#include "smt/supervised_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "smt/verdict_cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace faure::smt {

namespace {

bool envFlag(const char* name) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' && *s != '0';
}

}  // namespace

SupervisionOptions SupervisionOptions::fromEnv() {
  SupervisionOptions opts;
  if (const char* s = std::getenv("FAURE_RETRIES"); s != nullptr && *s) {
    opts.maxRetries = static_cast<int>(std::strtol(s, nullptr, 10));
    opts.enabled = true;
  }
  if (const char* s = std::getenv("FAURE_SOLVER_TIMEOUT_MS");
      s != nullptr && *s) {
    opts.watchdogMs = std::strtod(s, nullptr);
    opts.enabled = true;
  }
  if (envFlag("FAURE_FAILOVER")) {
    opts.failover = true;
    opts.enabled = true;
  }
  if (auto chaos = util::FaultPlan::fromEnv(); chaos != nullptr) {
    opts.seed = chaos->seed();
    opts.chaos = std::move(chaos);
    // The default plan faults only the primary backend; a native last
    // resort keeps chaos runs output-transparent (DESIGN.md §9).
    opts.failover = true;
    opts.enabled = true;
  }
  return opts;
}

SupervisedSolver::SupervisedSolver(const CVarRegistry& reg,
                                   SupervisionOptions opts)
    : SolverBase(reg), opts_(std::move(opts)) {}

SupervisedSolver::~SupervisedSolver() {
  if (restoreCacheTo_ != nullptr) {
    restoreCacheTo_->setVerdictCache(restoreCache_);
  }
  for (const BorrowedWiring& w : restoreWiring_) {
    w.solver->setTracer(w.tracer);
    w.solver->setGuard(w.guard);
  }
}

void SupervisedSolver::adoptCacheFrom(SolverBase& backend, bool isPrimary) {
  // Caching lives at the supervision level only: inner backends never
  // consult or populate a cache, so the lastCheckCacheable_ gate in
  // SolverBase::check() is the single admission point and faulted /
  // failed-over verdicts provably never land in it.
  VerdictCache* cache = backend.verdictCache();
  if (cache == nullptr) return;
  backend.setVerdictCache(nullptr);
  if (isPrimary && cache_ == nullptr) setVerdictCache(cache);
}

void SupervisedSolver::addBackend(std::string name,
                                  std::unique_ptr<SolverBase> backend) {
  if (backend == nullptr) {
    throw EvalError("SupervisedSolver: null backend");
  }
  adoptCacheFrom(*backend, chain_.empty());
  // Charging and mirroring happen once, at this wrapper: an inner
  // backend with its own tracer would double-mirror solver.* metrics,
  // and one with its own guard would double-charge check budgets.
  backend->setTracer(nullptr);
  backend->setGuard(nullptr);
  Backend be;
  be.name = std::move(name);
  be.solver = backend.get();
  be.owned = std::move(backend);
  chain_.push_back(std::move(be));
}

void SupervisedSolver::addBackend(std::string name, SolverBase* backend) {
  if (backend == nullptr) {
    throw EvalError("SupervisedSolver: null backend");
  }
  if (chain_.empty() && backend->verdictCache() != nullptr &&
      cache_ == nullptr) {
    restoreCacheTo_ = backend;
    restoreCache_ = backend->verdictCache();
  }
  adoptCacheFrom(*backend, chain_.empty());
  if (backend->tracer() != nullptr || backend->guard() != nullptr) {
    restoreWiring_.push_back(
        BorrowedWiring{backend, backend->tracer(), backend->guard()});
    backend->setTracer(nullptr);
    backend->setGuard(nullptr);
  }
  Backend be;
  be.name = std::move(name);
  be.solver = backend;
  chain_.push_back(std::move(be));
}

void SupervisedSolver::addNativeFallback() {
  addBackend("native", std::make_unique<NativeSolver>(reg_));
}

std::unique_ptr<SolverBase> SupervisedSolver::takeBackend(size_t i) {
  if (i >= chain_.size()) {
    throw EvalError("SupervisedSolver::takeBackend: index out of range");
  }
  Backend& be = chain_[i];
  if (be.owned == nullptr) {
    throw EvalError("SupervisedSolver::takeBackend: backend is borrowed");
  }
  std::unique_ptr<SolverBase> out = std::move(be.owned);
  if (i == 0 && cache_ != nullptr) {
    VerdictCache* cache = cache_;
    setVerdictCache(nullptr);
    out->setVerdictCache(cache);
  }
  chain_.erase(chain_.begin() + static_cast<ptrdiff_t>(i));
  return out;
}

void SupervisedSolver::setTracer(obs::Tracer* tracer) {
  SolverBase::setTracer(tracer);
  if (tracer == nullptr) {
    superviseMetrics_ = SuperviseHandles{};
    return;
  }
  obs::Registry& reg = tracer->metrics();
  superviseMetrics_.retries = &reg.counter("solver.supervise.retries");
  superviseMetrics_.failovers = &reg.counter("solver.supervise.failovers");
  superviseMetrics_.breakerOpen =
      &reg.counter("solver.supervise.breaker_open");
  superviseMetrics_.quarantined =
      &reg.counter("solver.supervise.quarantined");
  superviseMetrics_.watchdogTrips =
      &reg.counter("solver.supervise.watchdog_trips");
  superviseMetrics_.faultsInjected =
      &reg.counter("solver.supervise.faults_injected");
}

std::unique_ptr<SolverBase> SupervisedSolver::cloneForLane(
    size_t lane) const {
  auto clone = std::make_unique<SupervisedSolver>(reg_, opts_);
  clone->laneId_ = static_cast<int>(lane);
  for (const Backend& be : chain_) {
    std::unique_ptr<SolverBase> inner = be.solver->cloneForLane(lane);
    if (inner == nullptr) return nullptr;
    clone->addBackend(be.name, std::move(inner));
  }
  return clone;
}

void SupervisedSolver::bump(uint64_t SupervisionStats::* field,
                            obs::Counter* handle) {
  ++(sup_.*field);
  if (handle != nullptr) handle->add();
}

void SupervisedSolver::superviseEvent(std::string_view name,
                                      const std::string& detail) {
  if (tracer_ != nullptr) tracer_->event(name, detail);
}

bool SupervisedSolver::breakerAdmit(Backend& be) {
  switch (be.breaker) {
    case BreakerState::Closed:
    case BreakerState::HalfOpen:
      return true;
    case BreakerState::Open:
      if (--be.cooldownLeft > 0) return false;
      // One probe: success closes the breaker, failure re-opens it.
      be.breaker = BreakerState::HalfOpen;
      return true;
  }
  return true;
}

void SupervisedSolver::recordFailure(Backend& be, const Formula& f) {
  ++be.consecutiveFailures;
  const bool probeFailed = be.breaker == BreakerState::HalfOpen;
  if (probeFailed || (be.breaker == BreakerState::Closed &&
                      be.consecutiveFailures >= opts_.breakerThreshold)) {
    be.breaker = BreakerState::Open;
    be.cooldownLeft = std::max(1, opts_.breakerCooldownChecks);
    bump(&SupervisionStats::breakerOpens, superviseMetrics_.breakerOpen);
    superviseEvent("supervise.breaker_open", "backend=" + be.name);
  }
  // Quarantine bookkeeping: a query that keeps killing this backend is
  // pinned and never sent to it again. New entries stop once the lists
  // are saturated so memory stays bounded under adversarial workloads.
  const FormulaNode* node = f.nodePtr().get();
  if (be.quarantine.size() >= opts_.quarantineCapacity) return;
  auto it = be.hardFailures.find(node);
  if (it == be.hardFailures.end()) {
    if (be.hardFailures.size() >= opts_.quarantineCapacity * 4) return;
    it = be.hardFailures.emplace(node, 0).first;
    be.pins.push_back(f.nodePtr());
  }
  if (++it->second >= opts_.quarantineThreshold &&
      be.quarantine.insert(node).second) {
    bump(&SupervisionStats::quarantined, superviseMetrics_.quarantined);
    superviseEvent("supervise.quarantine", "backend=" + be.name);
  }
}

void SupervisedSolver::recordSuccess(Backend& be) {
  be.consecutiveFailures = 0;
  if (be.breaker == BreakerState::HalfOpen) {
    be.breaker = BreakerState::Closed;
    ++sup_.breakerResets;
    superviseEvent("supervise.breaker_reset", "backend=" + be.name);
  }
}

void SupervisedSolver::backoff(const Backend& be, uint64_t key,
                               uint32_t attempt) {
  if (opts_.backoffBaseMs <= 0.0) return;
  double delay = opts_.backoffBaseMs *
                 static_cast<double>(uint64_t{1} << std::min(attempt, 20u));
  delay = std::min(delay, opts_.backoffMaxMs);
  // Deterministic jitter in [0.5, 1.0): seeded, never wall-clock random.
  uint64_t mix = opts_.seed ^ (key * 0x9e3779b97f4a7c15ULL) ^
                 ((uint64_t{attempt} + 1) * 0xc2b2ae3d27d4eb4fULL);
  for (char c : be.name) {
    mix = mix * 1099511628211ULL + static_cast<unsigned char>(c);
  }
  delay *= 0.5 + 0.5 * util::Rng(mix).uniform();
  if (opts_.sleeper) {
    opts_.sleeper(delay);
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay));
  }
}

SupervisedSolver::Attempt SupervisedSolver::runAttempt(Backend& be,
                                                       size_t index,
                                                       const Formula& f,
                                                       uint64_t key,
                                                       uint32_t attempt) {
  Attempt out;
  obs::Span span;
  if (tracer_ != nullptr && tracer_->options().fineSpans) {
    span = obs::Span(tracer_, "supervise.attempt");
    span.note("backend", be.name);
  }

  // Injected faults are decided before the backend is touched: the
  // schedule is a pure function of (seed, backend, formula hash,
  // attempt), so it replays identically at any thread count.
  if (opts_.chaos != nullptr) {
    util::FaultKind kind = opts_.chaos->decide(be.name, key, attempt, laneId_);
    if (kind == util::FaultKind::None && index == 0) {
      kind = opts_.chaos->decide(util::FaultPlan::kPrimaryTag, key, attempt,
                                 laneId_);
    }
    if (kind != util::FaultKind::None) {
      out.failed = true;
      out.failureKind = util::faultKindText(kind).data();
      bump(&SupervisionStats::faultsInjected,
           superviseMetrics_.faultsInjected);
      if (kind == util::FaultKind::Timeout) {
        bump(&SupervisionStats::watchdogTrips,
             superviseMetrics_.watchdogTrips);
      }
      superviseEvent("supervise.fault",
                     "backend=" + be.name + " kind=" +
                         std::string(util::faultKindText(kind)));
      return out;
    }
  }

  // Watchdog: the attempt runs under its own deadline, capped by the
  // outer guard's remaining time so a per-call allowance can never
  // outlive the operation budget. Inner backends carry no other guard —
  // logical charging happened once, at this wrapper's admitCheck().
  ResourceGuard watchdog;
  double limit = opts_.watchdogMs > 0.0 ? opts_.watchdogMs / 1000.0 : 0.0;
  if (guard_ != nullptr) {
    double remaining = guard_->remainingSeconds();
    if (std::isfinite(remaining)) {
      limit = limit > 0.0 ? std::min(limit, remaining) : remaining;
      if (limit <= 0.0) limit = 1e-9;  // already expired: trip at once
    }
  }
  ResourceGuard* inner = nullptr;
  if (limit > 0.0) {
    ResourceLimits limits;
    limits.deadlineSeconds = limit;
    watchdog.arm(limits);
    inner = &watchdog;
  }
  ResourceGuardScope innerScope(be.solver, inner);
  const SolverStats before = be.solver->stats();
  try {
    out.verdict = be.solver->check(f);
  } catch (const SolverBackendError&) {
    // The engine died on this query; the chain absorbs it. Anything
    // else (EvalError, bad_alloc) is not engine trouble and propagates.
    out.failed = true;
    out.failureKind = "backend-error";
    return out;
  }
  out.enumerations = be.solver->stats().enumerations - before.enumerations;
  const bool innerTripped =
      (inner != nullptr && inner->tripped()) ||
      be.solver->stats().budgetTrips > before.budgetTrips;
  if (innerTripped) {
    if (guard_ != nullptr && !guard_->checkDeadline()) {
      // Not a watchdog story: the *operation's* budget is spent. Degrade
      // exactly as the unwrapped backend would — no retry, no failover.
      out.outerBudget = true;
      return out;
    }
    out.failed = true;
    out.failureKind = "watchdog";
    bump(&SupervisionStats::watchdogTrips, superviseMetrics_.watchdogTrips);
    superviseEvent("supervise.watchdog", "backend=" + be.name);
  }
  return out;
}

Sat SupervisedSolver::checkUncached(const Formula& f) {
  CheckScope scope(this);
  if (chain_.empty()) {
    throw EvalError("SupervisedSolver: no backends configured");
  }
  if (!admitCheck()) return Sat::Unknown;
  const auto key = static_cast<uint64_t>(f.hash());
  bool tainted = false;
  auto noteFailover = [&](const Backend& from) {
    bump(&SupervisionStats::failovers, superviseMetrics_.failovers);
    superviseEvent("supervise.failover", "from=" + from.name);
  };
  for (size_t i = 0; i < chain_.size(); ++i) {
    Backend& be = chain_[i];
    if (be.quarantine.count(f.nodePtr().get()) != 0) {
      ++sup_.quarantineSkips;
      tainted = true;
      if (i + 1 < chain_.size()) noteFailover(be);
      continue;
    }
    if (!breakerAdmit(be)) {
      tainted = true;
      if (i + 1 < chain_.size()) noteFailover(be);
      continue;
    }
    const auto attempts =
        1 + static_cast<uint32_t>(std::max(0, opts_.maxRetries));
    for (uint32_t a = 0; a < attempts; ++a) {
      Attempt out = runAttempt(be, i, f, key, a);
      if (out.outerBudget) {
        lastCheckCacheable_ = false;
        ++stats_.unknown;
        ++stats_.budgetTrips;
        return Sat::Unknown;
      }
      if (!out.failed) {
        // A verdict — including a genuine Unknown: the chain handles
        // failure, not incompleteness, so supervision never changes an
        // answer the backend produced (zero-fault bit-identity).
        recordSuccess(be);
        stats_.enumerations += out.enumerations;
        if (tainted) lastCheckCacheable_ = false;
        if (out.verdict == Sat::Unsat) ++stats_.unsat;
        if (out.verdict == Sat::Unknown) ++stats_.unknown;
        return out.verdict;
      }
      tainted = true;
      recordFailure(be, f);
      if (be.breaker == BreakerState::Open) break;  // opened just now
      if (a + 1 < attempts) {
        bump(&SupervisionStats::retries, superviseMetrics_.retries);
        superviseEvent("supervise.retry", "backend=" + be.name +
                                              " after=" + out.failureKind);
        backoff(be, key, a);
      }
    }
    if (i + 1 < chain_.size()) noteFailover(be);
  }
  // The whole chain is exhausted: degrade, never raise. Unknown is
  // conservative for every caller and the taint keeps it out of the
  // verdict cache.
  lastCheckCacheable_ = false;
  ++sup_.degradedUnknown;
  ++stats_.unknown;
  superviseEvent("supervise.degraded", "chain exhausted");
  return Sat::Unknown;
}

}  // namespace faure::smt
