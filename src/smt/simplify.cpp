#include "smt/simplify.hpp"

#include "smt/transform.hpp"

namespace faure::smt {

namespace {

/// Conjunct list of a cube formula (children of And, or the atom itself).
void conjunctsOf(const Formula& f, Cube& out) {
  if (f.kind() == Formula::Kind::And) {
    out = f.node().kids;
  } else {
    out = {f};
  }
}

/// Drops atoms implied by the remaining atoms of the cube.
Cube minimizeCube(const Cube& cube, SolverBase& solver) {
  Cube current = cube;
  // Try removing one atom at a time; keep the removal when the shrunk
  // cube still implies the removed atom.
  for (size_t i = 0; i < current.size();) {
    Cube without;
    without.reserve(current.size() - 1);
    for (size_t j = 0; j < current.size(); ++j) {
      if (j != i) without.push_back(current[j]);
    }
    if (solver.implies(Formula::conj(without), current[i])) {
      current = std::move(without);
      // Do not advance: position i now holds the next atom.
    } else {
      ++i;
    }
  }
  return current;
}

}  // namespace

Formula simplify(const Formula& f, SolverBase& solver,
                 const SimplifyOptions& opts) {
  if (f.isTrue() || f.isFalse() || f.isAtom()) return f;
  auto dnf = toDnf(f, opts.maxCubes);
  if (!dnf.has_value()) return f;

  // 1. Drop unsatisfiable cubes.
  std::vector<Formula> cubes;
  cubes.reserve(dnf->size());
  for (const Cube& cube : *dnf) {
    Formula c = Formula::conj(cube);
    if (solver.check(c) != Sat::Unsat) cubes.push_back(std::move(c));
  }
  if (cubes.empty()) return Formula::bottom();

  // 2. Drop cubes implied by another cube (keep the first of an
  //    equivalent pair). Quadratic in solver calls, so only attempted on
  //    small disjunctions.
  std::vector<Formula> kept;
  constexpr size_t kPairwiseCap = 64;
  if (cubes.size() <= kPairwiseCap) {
    for (size_t i = 0; i < cubes.size(); ++i) {
      bool subsumed = false;
      for (size_t j = 0; j < cubes.size() && !subsumed; ++j) {
        if (i == j) continue;
        // cube_i ⇒ cube_j makes cube_i redundant; break ties by index.
        if (solver.implies(cubes[i], cubes[j]) &&
            (!solver.implies(cubes[j], cubes[i]) || j < i)) {
          subsumed = true;
        }
      }
      if (!subsumed) kept.push_back(cubes[i]);
    }
  } else {
    kept = std::move(cubes);
  }

  // 3. Consensus merge: cubes S∧a and S∧b collapse to S when a∨b is
  //    valid (e.g. y=0 | y=1 over a {0,1} domain). Repeat to fixpoint.
  if (kept.size() <= kPairwiseCap) {
    bool merged = true;
    while (merged && kept.size() > 1) {
      merged = false;
      for (size_t i = 0; i < kept.size() && !merged; ++i) {
        for (size_t j = i + 1; j < kept.size() && !merged; ++j) {
          Cube a;
          Cube b;
          conjunctsOf(kept[i], a);
          conjunctsOf(kept[j], b);
          if (a.size() != b.size() || a.empty()) continue;
          // Find the single differing atom pair.
          Cube shared;
          std::vector<Formula> onlyA;
          for (const auto& atom : a) {
            bool inB = false;
            for (const auto& other : b) {
              if (atom == other) inB = true;
            }
            (inB ? shared : onlyA).push_back(atom);
          }
          if (onlyA.size() != 1) continue;
          std::vector<Formula> onlyB;
          for (const auto& atom : b) {
            bool inA = false;
            for (const auto& other : a) {
              if (atom == other) inA = true;
            }
            if (!inA) onlyB.push_back(atom);
          }
          if (onlyB.size() != 1) continue;
          if (!solver.implies(Formula::top(),
                              Formula::disj2(onlyA[0], onlyB[0]))) {
            continue;
          }
          kept[i] = Formula::conj(shared);
          kept.erase(kept.begin() + static_cast<ptrdiff_t>(j));
          merged = true;
        }
      }
    }
  }

  // 4. Minimize each surviving cube.
  if (opts.minimizeCubes && kept.size() <= kPairwiseCap) {
    for (Formula& c : kept) {
      if (c.kind() == Formula::Kind::And) {
        c = Formula::conj(minimizeCube(c.node().kids, solver));
      }
    }
  }

  Formula result = Formula::disj(kept);

  // 5. Validity collapse.
  if (opts.detectValidity && !result.isTrue() &&
      solver.implies(Formula::top(), result)) {
    return Formula::top();
  }
  // Keep the smaller of the original and the rebuilt formula (rebuilding
  // can in principle duplicate shared subterms).
  return result;
}

}  // namespace faure::smt
