// Supervised solver execution: the fault-tolerance layer between
// SolverBase::check() and the backends (DESIGN.md §9).
//
// A SupervisedSolver owns a failover chain of backends (canonically
// Z3 → NativeSolver; a chain of one is just retry + watchdog). Each
// logical check() runs the chain until a backend produces a verdict:
//
//   * watchdog — every attempt runs under a per-call deadline (an inner
//     ResourceGuard armed with min(watchdogMs, the outer guard's
//     remaining time)), so one hung check cannot eat the whole budget;
//   * bounded retry — a failed attempt (SolverBackendError, watchdog
//     trip, injected fault) is retried up to maxRetries times with
//     deterministic exponential backoff + jitter seeded via util::Rng —
//     never wall-clock random;
//   * circuit breaker — per backend, closed → open after
//     breakerThreshold consecutive hard failures; while open, checks
//     skip the backend for breakerCooldownChecks calls (count-based,
//     not time-based, for determinism), then one half-open probe either
//     closes it again or re-opens it;
//   * quarantine — a query that keeps killing one backend is pinned on
//     that backend's quarantine list and never sent to it again, so a
//     poisoned formula cannot take down the run;
//   * failover — when a backend is exhausted (retries spent, breaker
//     open, query quarantined) the next backend in the chain takes the
//     check; when the whole chain is exhausted the verdict degrades to
//     Sat::Unknown — conservative for every caller, same contract as a
//     budget trip ("Unknown costs performance, never soundness").
//
// Invariants (enforced by tests/faurelog/chaos_eval_test.cpp and the
// ctest chaos suite):
//   * zero faults ⇒ results and logical solver.* counters bit-identical
//     to the unwrapped backend;
//   * a genuine Unknown from a backend is returned as-is — the chain
//     handles *failure*, not incompleteness, so supervision never
//     changes a verdict the backend would have produced;
//   * verdicts shaped by supervision (fault, failover, quarantine) are
//     never admitted into an attached VerdictCache (the
//     lastCheckCacheable_ gate in SolverBase::check/implies);
//   * with a FaultPlan attached, degraded results are a pure function
//     of the seed — fault decisions key on the formula hash, never on
//     call order, so any thread count replays the same schedule.
//
// The wrapper is itself a SolverBase: guards charge once per logical
// check at this level, a VerdictCache attaches at this level only
// (inner backends are stripped of theirs), metrics mirror under both
// solver.* and solver.supervise.*, and cloneForLane() clones the whole
// chain so SolverPool lanes are independently supervised.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "smt/solver.hpp"
#include "util/fault_plan.hpp"

namespace faure::smt {

struct SupervisionOptions {
  /// Master switch for env/Session/CLI wiring: fromEnv() returns
  /// enabled=false when no supervision variable is set, and Session /
  /// evalFaure only wrap when it holds. A directly-constructed
  /// SupervisedSolver ignores it.
  bool enabled = false;
  /// Retry attempts after the first failure of one backend (so a
  /// backend sees at most 1 + maxRetries attempts per check).
  int maxRetries = 2;
  /// Per-attempt watchdog deadline in milliseconds; 0 disables. The
  /// effective deadline is min(watchdogMs, outer guard remaining).
  double watchdogMs = 0.0;
  /// Append a NativeSolver as the chain's last resort (Session / CLI
  /// honor this when wrapping; addNativeFallback() does it directly).
  bool failover = false;
  /// Backoff before retry k sleeps backoffBaseMs · 2^k · (0.5 + 0.5·j),
  /// j a deterministic jitter from `seed`. 0 (default) skips sleeping
  /// entirely — retries are immediate and runs stay wall-clock-free.
  double backoffBaseMs = 0.0;
  double backoffMaxMs = 100.0;
  /// Seed for backoff jitter (and recorded for run reports).
  uint64_t seed = 0x5eedfa47eULL;
  /// Consecutive hard failures that open a backend's breaker.
  int breakerThreshold = 8;
  /// Checks that skip an open backend before one half-open probe.
  int breakerCooldownChecks = 64;
  /// Hard failures of one (backend, query) before quarantine.
  int quarantineThreshold = 2;
  /// Cap on quarantined queries per backend (beyond it, failures keep
  /// failing over without being recorded — bounded memory).
  size_t quarantineCapacity = 1024;
  /// Deterministic fault injection (util/fault_plan.hpp); null runs
  /// the chain fault-free.
  std::shared_ptr<const util::FaultPlan> chaos;
  /// Test hook: replaces the backoff sleep (argument: milliseconds).
  std::function<void(double)> sleeper;

  /// Reads FAURE_RETRIES, FAURE_SOLVER_TIMEOUT_MS, FAURE_FAILOVER and
  /// FAURE_CHAOS_SEED; `enabled` is true when any is set. A chaos seed
  /// implies failover (the default plan faults only the primary
  /// backend, so a native last resort keeps runs output-transparent).
  static SupervisionOptions fromEnv();
};

/// Supervision-layer counters, mirrored live under solver.supervise.*
/// when a tracer is attached.
struct SupervisionStats {
  uint64_t retries = 0;          // re-attempts after a failed attempt
  uint64_t failovers = 0;        // checks moved to a later backend
  uint64_t breakerOpens = 0;     // closed/half-open -> open transitions
  uint64_t breakerResets = 0;    // half-open -> closed transitions
  uint64_t quarantined = 0;      // queries added to a quarantine list
  uint64_t quarantineSkips = 0;  // checks that skipped a backend for it
  uint64_t watchdogTrips = 0;    // attempts cut off by the watchdog
  uint64_t faultsInjected = 0;   // FaultPlan decisions that fired
  uint64_t degradedUnknown = 0;  // checks the whole chain failed
};

class SupervisedSolver : public SolverBase {
 public:
  enum class BreakerState : uint8_t { Closed, Open, HalfOpen };

  SupervisedSolver(const CVarRegistry& reg, SupervisionOptions opts);
  ~SupervisedSolver() override;

  /// Appends an owned backend to the failover chain. The first backend
  /// added is the primary; if it carries a VerdictCache the wrapper
  /// adopts it (caching lives at the supervision level so failed-over
  /// verdicts provably never reach it). Later backends are stripped of
  /// any cache.
  void addBackend(std::string name, std::unique_ptr<SolverBase> backend);

  /// Appends a borrowed backend (the caller keeps ownership; it must
  /// outlive the wrapper). An adopted cache is restored to the backend
  /// when the wrapper is destroyed — this is how evalFaure supervises a
  /// caller-owned solver for the duration of one evaluation.
  void addBackend(std::string name, SolverBase* backend);

  /// Appends a NativeSolver last resort named "native".
  void addNativeFallback();

  /// Detaches and returns backend `i` (owning backends only; throws
  /// EvalError for borrowed ones), restoring the wrapper's cache to it.
  /// Session::setSupervision uses this to unwrap.
  std::unique_ptr<SolverBase> takeBackend(size_t i);

  size_t backends() const { return chain_.size(); }
  const std::string& backendName(size_t i) const { return chain_[i].name; }
  SolverBase& backend(size_t i) { return *chain_[i].solver; }

  const SupervisionOptions& supervision() const { return opts_; }
  const SupervisionStats& supervisionStats() const { return sup_; }
  BreakerState breakerState(size_t i) const { return chain_[i].breaker; }

  void setTracer(obs::Tracer* tracer) override;

  /// Clones the whole chain for a SolverPool lane (sharing the fault
  /// plan; breakers and quarantines start fresh). Returns nullptr when
  /// any backend cannot be cloned — the pool then serializes through
  /// this instance instead.
  std::unique_ptr<SolverBase> cloneForLane(size_t lane) const override;

 protected:
  Sat checkUncached(const Formula& f) override;

 private:
  struct Backend {
    std::string name;
    std::unique_ptr<SolverBase> owned;
    SolverBase* solver = nullptr;  // == owned.get() when owning
    // Circuit breaker (count-based cooldown for determinism).
    BreakerState breaker = BreakerState::Closed;
    int consecutiveFailures = 0;
    int cooldownLeft = 0;
    // Quarantine: queries that repeatedly killed this backend. Keys are
    // hash-consed node identities; pins keep them alive.
    std::unordered_map<const FormulaNode*, int> hardFailures;
    std::unordered_set<const FormulaNode*> quarantine;
    std::vector<std::shared_ptr<const FormulaNode>> pins;
  };

  /// One attempt's outcome, as seen by the chain loop.
  struct Attempt {
    Sat verdict = Sat::Unknown;
    uint64_t enumerations = 0;
    bool failed = false;          // hard failure: retry / fail over
    bool outerBudget = false;     // the *outer* guard expired: degrade
    const char* failureKind = "";
  };

  void adoptCacheFrom(SolverBase& backend, bool isPrimary);
  Attempt runAttempt(Backend& be, size_t index, const Formula& f,
                     uint64_t key, uint32_t attempt);
  bool breakerAdmit(Backend& be);
  void recordFailure(Backend& be, const Formula& f);
  void recordSuccess(Backend& be);
  void backoff(const Backend& be, uint64_t key, uint32_t attempt);
  void bump(uint64_t SupervisionStats::* field, obs::Counter* handle);
  void superviseEvent(std::string_view name, const std::string& detail);

  SupervisionOptions opts_;
  SupervisionStats sup_;
  std::vector<Backend> chain_;
  int laneId_ = -1;  // SolverPool lane of a clone; -1 off-pool
  /// Borrowed primary whose cache the wrapper adopted; restored in the
  /// destructor.
  SolverBase* restoreCacheTo_ = nullptr;
  VerdictCache* restoreCache_ = nullptr;
  /// Borrowed backends whose tracer/guard the wrapper stripped on add
  /// (charging and mirroring happen once, at this level); restored in
  /// the destructor.
  struct BorrowedWiring {
    SolverBase* solver = nullptr;
    obs::Tracer* tracer = nullptr;
    ResourceGuard* guard = nullptr;
  };
  std::vector<BorrowedWiring> restoreWiring_;

  struct SuperviseHandles {
    obs::Counter* retries = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* breakerOpen = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* watchdogTrips = nullptr;
    obs::Counter* faultsInjected = nullptr;
  };
  SuperviseHandles superviseMetrics_;
};

}  // namespace faure::smt
