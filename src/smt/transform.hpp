// Formula transformations: substitution, DNF conversion.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "smt/formula.hpp"

namespace faure::smt {

/// A (partial) assignment of c-variables to constants.
using Assignment = std::unordered_map<CVarId, Value>;

/// Substitutes assigned c-variables by their constants and folds the
/// result. Unassigned variables are left in place.
Formula substitute(const Formula& f, const Assignment& a);

/// A conjunction of atoms (each Formula here is Cmp/Lin/True/False — never
/// And/Or/Not).
using Cube = std::vector<Formula>;

/// Converts to disjunctive normal form: the result represents
/// OR over cubes of AND over atoms. Formulas built through the Formula
/// factories are already in negation normal form, so no NOT nodes occur.
///
/// Returns std::nullopt if the DNF would exceed `maxCubes` (callers fall
/// back to enumeration or an external solver).
std::optional<std::vector<Cube>> toDnf(const Formula& f, size_t maxCubes);

/// Rebuilds a Formula from a DNF.
Formula fromDnf(const std::vector<Cube>& dnf);

/// Sound under-approximation of ∃ vars . f — used by the §5 containment
/// reduction, where c-variables of the *subsuming* constraint program are
/// rule-scoped existentials.
///
/// Per DNF cube: equalities binding an existential variable are
/// eliminated by substitution; residual disequalities `v != c` over an
/// unbounded-domain existential are dropped (a witness always exists).
/// A cube whose existential part cannot be eliminated soundly is dropped
/// entirely, so
/// the result R always satisfies R ⇒ ∃vars.f (callers testing
/// `premise ⇒ ∃vars.f` via R stay sound and may only lose completeness).
Formula projectExistentials(const Formula& f, const std::vector<CVarId>& vars,
                            const CVarRegistry& reg,
                            size_t maxCubes = 4096);

}  // namespace faure::smt
