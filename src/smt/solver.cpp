#include "smt/solver.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <optional>

#include "smt/verdict_cache.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace faure::smt {

std::string_view satText(Sat s) {
  switch (s) {
    case Sat::Unsat:
      return "unsat";
    case Sat::Sat:
      return "sat";
    case Sat::Unknown:
      return "unknown";
  }
  return "?";
}

bool SolverBase::admitCheck() {
  ++stats_.checks;
  if (guard_ != nullptr && !guard_->chargeSolverChecks()) {
    ++stats_.unknown;
    ++stats_.budgetTrips;
    return false;
  }
  return true;
}

void SolverBase::setTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  obs::Registry& reg = tracer_->metrics();
  metrics_.checks = &reg.counter("solver.checks");
  metrics_.unsat = &reg.counter("solver.unsat");
  metrics_.unknown = &reg.counter("solver.unknown");
  metrics_.budgetTrips = &reg.counter("solver.budget_trips");
  metrics_.enumerations = &reg.counter("solver.enumerations");
  metrics_.checkSeconds = &reg.histogram("solver.check_seconds");
}

SolverBase::CheckScope::CheckScope(SolverBase* solver)
    : solver_(solver), before_(solver->stats_) {
  if (solver_->tracer_ != nullptr &&
      solver_->tracer_->options().fineSpans) {
    span_ = obs::Span(solver_->tracer_, "solver.check");
  }
}

SolverBase::CheckScope::~CheckScope() {
  double seconds = watch_.elapsed();
  solver_->stats_.seconds += seconds;
  if (solver_->tracer_ == nullptr) return;
  const SolverStats& now = solver_->stats_;
  const MetricHandles& m = solver_->metrics_;
  m.checks->add(now.checks - before_.checks);
  m.unsat->add(now.unsat - before_.unsat);
  m.unknown->add(now.unknown - before_.unknown);
  m.budgetTrips->add(now.budgetTrips - before_.budgetTrips);
  m.enumerations->add(now.enumerations - before_.enumerations);
  m.checkSeconds->observe(seconds);
}

Sat SolverBase::consumeDelegated(Sat verdict, double seconds,
                                 uint64_t enumerations) {
  SolverStats before = stats_;
  Sat result = verdict;
  if (!admitCheck()) {
    result = Sat::Unknown;
  } else {
    stats_.enumerations += enumerations;
    if (result == Sat::Unsat) ++stats_.unsat;
    if (result == Sat::Unknown) ++stats_.unknown;
  }
  stats_.seconds += seconds;
  if (tracer_ != nullptr) {
    const SolverStats& now = stats_;
    metrics_.checks->add(now.checks - before.checks);
    metrics_.unsat->add(now.unsat - before.unsat);
    metrics_.unknown->add(now.unknown - before.unknown);
    metrics_.budgetTrips->add(now.budgetTrips - before.budgetTrips);
    metrics_.enumerations->add(now.enumerations - before.enumerations);
    metrics_.checkSeconds->observe(seconds);
  }
  return result;
}

void SolverBase::setVerdictCache(VerdictCache* cache) {
  if (cache != nullptr && &cache->registry() != &reg_) {
    throw EvalError(
        "setVerdictCache: cache is bound to a different c-variable "
        "registry");
  }
  cache_ = cache;
}

Sat SolverBase::check(const Formula& f) {
  // Cached replays and constants are pure logical outcomes; a fresh
  // checkUncached() may clear this (supervision) or signal a budget
  // degrade through the budgetTrips delta.
  lastCheckCacheable_ = true;
  // Constants are cheaper than a cache probe; and an uncacheable miss
  // below would pollute the miss counter (physical-check estimate).
  if (cache_ == nullptr || f.isTrue() || f.isFalse()) {
    return checkUncached(f);
  }
  util::Stopwatch watch;
  if (auto hit = cache_->lookupCheck(f)) {
    // Replay with full logical accounting: guard charge (which may
    // still degrade this call to Unknown — budget behaviour is
    // identical to recomputing), stats and metric mirrors. Wall time is
    // the lookup's, the only thing a cache is allowed to change.
    return consumeDelegated(hit->sat, watch.elapsed(), hit->enumerations);
  }
  const SolverStats before = stats_;
  Sat result = checkUncached(f);
  // A verdict degraded by a budget trip (deadline mid-check, tripped
  // check budget, Z3 timeout) is a resource outcome, not a logical one:
  // never cache it. Every degrade path increments budgetTrips, so the
  // delta is exactly the signal. Supervision (retries, failover,
  // quarantine) clears lastCheckCacheable_ for the same reason.
  if (stats_.budgetTrips == before.budgetTrips && lastCheckCacheable_) {
    cache_->storeCheck(f, result, stats_.enumerations - before.enumerations);
  }
  return result;
}

bool SolverBase::implies(const Formula& a, const Formula& b) {
  if (a.isFalse() || b.isTrue()) return true;
  if (a == b) return true;
  if (cache_ == nullptr) {
    return check(Formula::conj2(a, Formula::neg(b))) == Sat::Unsat;
  }
  util::Stopwatch watch;
  if (auto hit = cache_->lookupImplies(a, b)) {
    // Same accounting as the uncached path's inner check; a guard trip
    // degrades to Unknown and therefore answers "no", exactly as an
    // uncached tripped check would.
    return consumeDelegated(hit->sat, watch.elapsed(), hit->enumerations) ==
           Sat::Unsat;
  }
  const SolverStats before = stats_;
  Sat result = check(Formula::conj2(a, Formula::neg(b)));
  if (stats_.budgetTrips == before.budgetTrips && lastCheckCacheable_) {
    cache_->storeImplies(a, b, result,
                         stats_.enumerations - before.enumerations);
  }
  return result == Sat::Unsat;
}

bool SolverBase::equivalent(const Formula& a, const Formula& b) {
  if (a == b) return true;
  return implies(a, b) && implies(b, a);
}

namespace {

int64_t satAdd(int64_t a, int64_t b) {
  if (a > 0 && b > std::numeric_limits<int64_t>::max() - a) {
    return std::numeric_limits<int64_t>::max();
  }
  if (a < 0 && b < std::numeric_limits<int64_t>::min() - a) {
    return std::numeric_limits<int64_t>::min();
  }
  return a + b;
}

int64_t satMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  // Conditions use tiny coefficients; clamp instead of trapping.
  long double p = static_cast<long double>(a) * static_cast<long double>(b);
  if (p > static_cast<long double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  if (p < static_cast<long double>(std::numeric_limits<int64_t>::min())) {
    return std::numeric_limits<int64_t>::min();
  }
  return a * b;
}

/// Theory state for one conjunction of atoms: union-find over c-variables
/// with per-class constant bindings, excluded constants, integer intervals
/// and a joint finite-candidate computation.
class CubeChecker {
 public:
  CubeChecker(const CVarRegistry& reg, uint64_t maxEnum, uint64_t* enumCount,
              ResourceGuard* guard)
      : reg_(reg), maxEnum_(maxEnum), enumCount_(enumCount), guard_(guard) {}

  Sat check(const Cube& cube) {
    for (const Formula& atom : cube) {
      if (atom.isFalse()) return Sat::Unsat;
    }
    // Saturation loop: substituting fresh bindings can simplify residual
    // atoms into new bindings, so re-run classification until stable.
    size_t maxRounds = cube.size() + reg_.size() + 2;
    for (size_t round = 0; round < maxRounds; ++round) {
      changed_ = false;
      residuals_.clear();
      nePairs_.clear();
      for (const Formula& atom : cube) {
        if (!classify(atom)) return Sat::Unsat;
      }
      if (!propagateSingletons()) return Sat::Unsat;
      if (!changed_) break;
    }
    // Every class must keep at least one candidate.
    for (size_t i = 0; i < classes_.size(); ++i) {
      size_t rep = find(i);
      if (rep != i) continue;
      if (classes_[rep].bound.has_value()) continue;
      auto cand = candidates(rep);
      if (cand.has_value() && cand->empty()) return Sat::Unsat;
    }
    if (residuals_.empty() && nePairs_.empty()) return Sat::Sat;
    return checkResiduals();
  }

 private:
  struct Cls {
    std::optional<Value> bound;
    std::vector<Value> excluded;
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    ValueType type = ValueType::Any;
    std::vector<CVarId> members;
  };

  size_t slot(CVarId var) {
    auto it = slotOf_.find(var);
    if (it != slotOf_.end()) return it->second;
    size_t s = classes_.size();
    slotOf_.emplace(var, s);
    parent_.push_back(s);
    Cls c;
    c.members.push_back(var);
    const auto& info = reg_.info(var);
    c.type = info.type;
    classes_.push_back(std::move(c));
    return s;
  }

  size_t find(size_t s) {
    while (parent_[s] != s) {
      parent_[s] = parent_[parent_[s]];
      s = parent_[s];
    }
    return s;
  }

  static bool typeCompatible(ValueType a, ValueType b) {
    return a == ValueType::Any || b == ValueType::Any || a == b;
  }

  // Returns false on contradiction.
  bool bind(size_t rep, const Value& val) {
    Cls& c = classes_[rep];
    ValueType vt = val.constantType();
    if (!typeCompatible(c.type, vt)) return false;
    if (c.bound.has_value()) return *c.bound == val;
    if (vt == ValueType::Int) {
      int64_t x = val.asInt();
      if (x < c.lo || x > c.hi) return false;
    }
    for (const Value& e : c.excluded) {
      if (e == val) return false;
    }
    // Finite member domains must admit the value.
    for (CVarId m : c.members) {
      const auto& dom = reg_.info(m).domain;
      if (!dom.empty() &&
          std::find(dom.begin(), dom.end(), val) == dom.end()) {
        return false;
      }
    }
    c.bound = val;
    c.type = vt;
    changed_ = true;
    return true;
  }

  bool merge(size_t a, size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return true;
    Cls& ca = classes_[a];
    Cls& cb = classes_[b];
    if (!typeCompatible(ca.type, cb.type)) return false;
    if (ca.type == ValueType::Any) ca.type = cb.type;
    ca.lo = std::max(ca.lo, cb.lo);
    ca.hi = std::min(ca.hi, cb.hi);
    ca.excluded.insert(ca.excluded.end(), cb.excluded.begin(),
                       cb.excluded.end());
    ca.members.insert(ca.members.end(), cb.members.begin(), cb.members.end());
    std::optional<Value> pending = cb.bound;
    parent_[b] = a;
    changed_ = true;
    if (pending.has_value()) {
      std::optional<Value> mine = ca.bound;
      ca.bound.reset();
      if (!bind(a, *pending)) return false;
      if (mine.has_value() && *mine != *pending) return false;
    } else if (ca.bound.has_value()) {
      Value v = *ca.bound;
      ca.bound.reset();
      if (!bind(a, v)) return false;
    }
    return true;
  }

  bool exclude(size_t rep, const Value& val) {
    Cls& c = classes_[rep];
    if (c.bound.has_value()) return *c.bound != val;
    for (const Value& e : c.excluded) {
      if (e == val) return true;
    }
    c.excluded.push_back(val);
    return true;
  }

  bool tighten(size_t rep, CmpOp op, int64_t k) {
    Cls& c = classes_[rep];
    if (!typeCompatible(c.type, ValueType::Int)) return false;
    c.type = ValueType::Int;
    if (c.bound.has_value()) return evalIntCmp(c.bound->asInt(), op, k);
    switch (op) {
      case CmpOp::Lt:
        c.hi = std::min(c.hi, k - 1);
        break;
      case CmpOp::Le:
        c.hi = std::min(c.hi, k);
        break;
      case CmpOp::Gt:
        c.lo = std::max(c.lo, k + 1);
        break;
      case CmpOp::Ge:
        c.lo = std::max(c.lo, k);
        break;
      default:
        assert(false);
    }
    return c.lo <= c.hi;
  }

  // Substitutes current bindings into `f`.
  Formula reduce(const Formula& f) {
    Assignment a;
    std::vector<CVarId> vars;
    f.collectVars(vars);
    for (CVarId v : vars) {
      size_t rep = find(slot(v));
      if (classes_[rep].bound.has_value()) a.emplace(v, *classes_[rep].bound);
    }
    return a.empty() ? f : substitute(f, a);
  }

  // Dispatches one atom into the theory state; false on contradiction.
  bool classify(const Formula& atomIn) {
    Formula atom = reduce(atomIn);
    if (atom.isTrue()) return true;
    if (atom.isFalse()) return false;
    const FormulaNode& n = atom.node();
    if (n.kind == FormulaNode::Kind::Cmp) {
      // Constructor normalization guarantees lhs is a c-variable.
      size_t a = find(slot(n.lhs.asCVar()));
      if (n.rhs.isConstant()) {
        switch (n.op) {
          case CmpOp::Eq:
            return bind(a, n.rhs);
          case CmpOp::Ne:
            return exclude(a, n.rhs);
          default:
            if (n.rhs.kind() != Value::Kind::Int) return false;
            return tighten(a, n.op, n.rhs.asInt());
        }
      }
      size_t b = find(slot(n.rhs.asCVar()));
      switch (n.op) {
        case CmpOp::Eq:
          return merge(a, b);
        case CmpOp::Ne:
          if (find(a) == find(b)) return false;
          addNePair(find(a), find(b));
          return true;
        default: {
          // x < y  ⇒  x - y < 0: hand to the linear machinery.
          LinTerm t = LinTerm::make(
              {{n.lhs.asCVar(), 1}, {n.rhs.asCVar(), -1}}, 0);
          return classifyLin(t, n.op);
        }
      }
    }
    if (n.kind == FormulaNode::Kind::Lin) return classifyLin(n.lin, n.op);
    // Nested boolean structure inside a cube only appears when reduce()
    // re-expanded something; treat as residual for enumeration.
    residuals_.push_back(atom);
    return true;
  }

  bool classifyLin(const LinTerm& term, CmpOp op) {
    if (term.isConstant()) return evalIntCmp(term.cst, op, 0);
    // All linear variables are integers.
    for (const auto& [v, c] : term.coefs) {
      (void)c;
      size_t rep = find(slot(v));
      Cls& cls = classes_[rep];
      if (!typeCompatible(cls.type, ValueType::Int)) return false;
      if (cls.type == ValueType::Any) cls.type = ValueType::Int;
    }
    if (term.coefs.size() == 1) {
      auto [v, c] = term.coefs[0];
      size_t rep = find(slot(v));
      // c*v + cst op 0.
      if (op == CmpOp::Eq) {
        if ((-term.cst) % c != 0) return false;
        return bind(rep, Value::fromInt((-term.cst) / c));
      }
      if (op == CmpOp::Ne) {
        if ((-term.cst) % c != 0) return true;
        return exclude(rep, Value::fromInt((-term.cst) / c));
      }
      // Ordered: v op' bound with careful rounding.
      CmpOp vop = c > 0 ? op : flipOp(op);
      int64_t a = c > 0 ? c : -c;
      int64_t num = c > 0 ? -term.cst : term.cst;
      // c>0: v op num/a ; c<0: v flip(op) num/a, num possibly not divisible.
      auto floorDiv = [](int64_t x, int64_t y) {
        int64_t q = x / y;
        if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
        return q;
      };
      switch (vop) {
        case CmpOp::Lt:
          // v < num/a  ⇔  v <= ceil(num/a) - 1  ⇔ v <= floorDiv(num-1, a)
          return tighten(rep, CmpOp::Le, floorDiv(num - 1, a));
        case CmpOp::Le:
          return tighten(rep, CmpOp::Le, floorDiv(num, a));
        case CmpOp::Gt:
          return tighten(rep, CmpOp::Ge, floorDiv(num, a) + 1);
        case CmpOp::Ge:
          // v >= num/a ⇔ v >= ceil(num/a) = floorDiv(num + a - 1, a)
          return tighten(rep, CmpOp::Ge, floorDiv(num + a - 1, a));
        default:
          return true;
      }
    }
    residuals_.push_back(Formula::lin(term, op));
    return true;
  }

  void addNePair(size_t a, size_t b) {
    if (a > b) std::swap(a, b);
    for (const auto& [x, y] : nePairs_) {
      if (x == a && y == b) return;
    }
    nePairs_.emplace_back(a, b);
  }

  /// Joint finite candidate set of a class, or nullopt when infinite.
  std::optional<std::vector<Value>> candidates(size_t rep) {
    const Cls& c = classes_[rep];
    if (c.bound.has_value()) return std::vector<Value>{*c.bound};
    std::optional<std::vector<Value>> cand;
    for (CVarId m : c.members) {
      const auto& dom = reg_.info(m).domain;
      if (dom.empty()) continue;
      if (!cand.has_value()) {
        cand = dom;
      } else {
        std::vector<Value> inter;
        for (const Value& v : *cand) {
          if (std::find(dom.begin(), dom.end(), v) != dom.end()) {
            inter.push_back(v);
          }
        }
        cand = std::move(inter);
      }
    }
    if (!cand.has_value()) {
      // No member has an explicit domain; a bounded integer interval is
      // still enumerable if small.
      if (c.type == ValueType::Int &&
          c.lo != std::numeric_limits<int64_t>::min() &&
          c.hi != std::numeric_limits<int64_t>::max() &&
          static_cast<uint64_t>(c.hi - c.lo) < maxEnum_) {
        std::vector<Value> vs;
        for (int64_t x = c.lo; x <= c.hi; ++x) vs.push_back(Value::fromInt(x));
        cand = std::move(vs);
      } else {
        return std::nullopt;
      }
    }
    // Filter by interval and exclusions.
    std::vector<Value> out;
    for (const Value& v : *cand) {
      if (c.type == ValueType::Int || v.kind() == Value::Kind::Int) {
        if (v.kind() != Value::Kind::Int) continue;
        if (v.asInt() < c.lo || v.asInt() > c.hi) continue;
      }
      if (std::find(c.excluded.begin(), c.excluded.end(), v) !=
          c.excluded.end()) {
        continue;
      }
      out.push_back(v);
    }
    return out;
  }

  bool propagateSingletons() {
    for (size_t i = 0; i < classes_.size(); ++i) {
      if (find(i) != i || classes_[i].bound.has_value()) continue;
      auto cand = candidates(i);
      if (!cand.has_value()) continue;
      if (cand->empty()) return false;
      if (cand->size() == 1 && !bind(i, (*cand)[0])) return false;
    }
    return true;
  }

  Sat checkResiduals() {
    // Classes involved in residual constraints.
    std::vector<size_t> involved;
    auto addInvolved = [&](size_t rep) {
      if (classes_[rep].bound.has_value()) return;
      if (std::find(involved.begin(), involved.end(), rep) == involved.end()) {
        involved.push_back(rep);
      }
    };
    for (const Formula& r : residuals_) {
      std::vector<CVarId> vars;
      r.collectVars(vars);
      for (CVarId v : vars) addInvolved(find(slot(v)));
    }
    for (const auto& [a, b] : nePairs_) {
      addInvolved(find(a));
      addInvolved(find(b));
    }

    // Try exhaustive finite-domain enumeration.
    std::vector<std::vector<Value>> cands;
    uint64_t total = 1;
    bool enumerable = true;
    for (size_t rep : involved) {
      auto c = candidates(rep);
      if (!c.has_value() || c->empty() ||
          total > maxEnum_ / std::max<size_t>(c->size(), 1)) {
        enumerable = false;
        break;
      }
      total *= c->size();
      cands.push_back(std::move(*c));
    }
    if (enumerable) {
      if (enumCount_ != nullptr) ++*enumCount_;
      std::vector<size_t> idx(involved.size(), 0);
      uint32_t sinceGuard = 0;
      while (true) {
        if (guard_ != nullptr && ++sinceGuard == 512) {
          sinceGuard = 0;
          if (!guard_->checkDeadline()) return Sat::Unknown;
        }
        if (assignmentWorks(involved, cands, idx)) return Sat::Sat;
        size_t k = 0;
        while (k < idx.size() && ++idx[k] == cands[k].size()) {
          idx[k] = 0;
          ++k;
        }
        if (k == idx.size()) return Sat::Unsat;
      }
    }

    // Interval refutation: any single impossible residual refutes the cube.
    for (const Formula& r : residuals_) {
      if (r.kind() == FormulaNode::Kind::Lin &&
          linImpossible(r.node().lin, r.node().op)) {
        return Sat::Unsat;
      }
    }
    return Sat::Unknown;
  }

  bool assignmentWorks(const std::vector<size_t>& involved,
                       const std::vector<std::vector<Value>>& cands,
                       const std::vector<size_t>& idx) {
    Assignment a;
    for (size_t i = 0; i < involved.size(); ++i) {
      const Value& v = cands[i][idx[i]];
      for (CVarId m : classes_[involved[i]].members) a.emplace(m, v);
    }
    // Also substitute already-bound classes so residuals fold to ground.
    for (size_t s = 0; s < classes_.size(); ++s) {
      size_t rep = find(s);
      if (classes_[rep].bound.has_value()) {
        for (CVarId m : classes_[s].members) a.emplace(m, *classes_[rep].bound);
      }
    }
    for (const Formula& r : residuals_) {
      Formula g = substitute(r, a);
      if (!g.isTrue()) return false;
    }
    for (const auto& [x, y] : nePairs_) {
      size_t ri = indexOf(involved, find(x));
      size_t rj = indexOf(involved, find(y));
      if (ri == SIZE_MAX || rj == SIZE_MAX) continue;  // one side bound: ok
      if (cands[ri][idx[ri]] == cands[rj][idx[rj]]) return false;
    }
    return true;
  }

  static size_t indexOf(const std::vector<size_t>& v, size_t x) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == x) return i;
    }
    return SIZE_MAX;
  }

  bool linImpossible(const LinTerm& term, CmpOp op) {
    int64_t mn = term.cst;
    int64_t mx = term.cst;
    for (const auto& [v, c] : term.coefs) {
      size_t rep = find(slot(v));
      const Cls& cls = classes_[rep];
      int64_t lo = cls.lo;
      int64_t hi = cls.hi;
      if (cls.bound.has_value()) lo = hi = cls.bound->asInt();
      auto cand = candidates(rep);
      if (cand.has_value() && !cand->empty()) {
        int64_t clo = std::numeric_limits<int64_t>::max();
        int64_t chi = std::numeric_limits<int64_t>::min();
        for (const Value& x : *cand) {
          if (x.kind() != Value::Kind::Int) return false;
          clo = std::min(clo, x.asInt());
          chi = std::max(chi, x.asInt());
        }
        lo = std::max(lo, clo);
        hi = std::min(hi, chi);
      }
      int64_t a = satMul(c, lo);
      int64_t b = satMul(c, hi);
      mn = satAdd(mn, std::min(a, b));
      mx = satAdd(mx, std::max(a, b));
    }
    switch (op) {
      case CmpOp::Eq:
        return mn > 0 || mx < 0;
      case CmpOp::Ne:
        return false;  // an interval refutation of != needs mn==mx==0
      case CmpOp::Lt:
        return mn >= 0;
      case CmpOp::Le:
        return mn > 0;
      case CmpOp::Gt:
        return mx <= 0;
      case CmpOp::Ge:
        return mx < 0;
    }
    return false;
  }

  const CVarRegistry& reg_;
  uint64_t maxEnum_;
  uint64_t* enumCount_;
  ResourceGuard* guard_;

  std::unordered_map<CVarId, size_t> slotOf_;
  std::vector<size_t> parent_;
  std::vector<Cls> classes_;
  std::vector<Formula> residuals_;
  std::vector<std::pair<size_t, size_t>> nePairs_;
  bool changed_ = false;
};

}  // namespace

Sat NativeSolver::checkUncached(const Formula& f) {
  CheckScope scope(this);
  if (!admitCheck()) return Sat::Unknown;
  Sat result;
  if (f.isTrue()) {
    result = Sat::Sat;
  } else if (f.isFalse()) {
    result = Sat::Unsat;
  } else {
    auto dnf = toDnf(f, opts_.maxDnfCubes);
    if (!dnf.has_value()) {
      result = enumerate(f);
    } else {
      bool anyUnknown = false;
      result = Sat::Unsat;
      for (const Cube& cube : *dnf) {
        if (guard_ != nullptr && !guard_->checkDeadline()) {
          anyUnknown = true;
          break;
        }
        CubeChecker checker(reg_, opts_.maxEnum, &stats_.enumerations,
                            guard_);
        Sat r = checker.check(cube);
        if (r == Sat::Sat) {
          result = Sat::Sat;
          break;
        }
        if (r == Sat::Unknown) anyUnknown = true;
      }
      if (result != Sat::Sat && anyUnknown) result = Sat::Unknown;
    }
  }
  if (guard_ != nullptr && guard_->tripped() && result == Sat::Unknown) {
    ++stats_.budgetTrips;
  }
  if (result == Sat::Unsat) ++stats_.unsat;
  if (result == Sat::Unknown) ++stats_.unknown;
  return result;
}

Sat NativeSolver::enumerate(const Formula& f) {
  std::vector<CVarId> vars;
  f.collectVars(vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  uint64_t total = 1;
  for (CVarId v : vars) {
    const auto& dom = reg_.info(v).domain;
    if (dom.empty() || total > opts_.maxEnum / dom.size()) {
      return Sat::Unknown;
    }
    total *= dom.size();
  }
  ++stats_.enumerations;
  bool sat = false;
  forEachModel(f, reg_, vars, [&](const Assignment&) { sat = true; });
  return sat ? Sat::Sat : Sat::Unsat;
}

namespace {

void modelRec(const Formula& f, const CVarRegistry& reg,
              const std::vector<CVarId>& vars, size_t i, Assignment& acc,
              const std::function<void(const Assignment&)>& fn) {
  if (f.isFalse()) return;
  if (i == vars.size()) {
    if (f.isTrue()) fn(acc);
    return;
  }
  CVarId v = vars[i];
  for (const Value& val : reg.info(v).domain) {
    acc[v] = val;
    Assignment one{{v, val}};
    modelRec(substitute(f, one), reg, vars, i + 1, acc, fn);
  }
  acc.erase(v);
}

}  // namespace

bool forEachModel(const Formula& f, const CVarRegistry& reg,
                  const std::vector<CVarId>& vars,
                  const std::function<void(const Assignment&)>& fn) {
  for (CVarId v : vars) {
    if (reg.info(v).domain.empty()) return false;
  }
  Assignment acc;
  modelRec(f, reg, vars, 0, acc, fn);
  return true;
}

}  // namespace faure::smt
