// Optional Z3 backend, mirroring the paper's implementation (§6 step 3
// invokes Z3 to remove tuples with contradictory conditions).
//
// Encoding: every c-variable becomes a Z3 integer constant. Integer
// constants keep their value; symbolic constants (symbols, paths,
// prefixes) are value-numbered into distinct codes starting at 2^40, so
// that cross-type equalities are correctly false as long as integer
// constants stay below 2^40 (ports, link bits and node ids all do).
// Finite domains become disjunctions of equalities.
//
// When the library is built without Z3, makeZ3Solver returns nullptr and
// z3Available() is false; callers (benchmarks, tests) skip accordingly.
// Engine trouble — a missing build, or z3 raising mid-check — surfaces
// as faure::SolverBackendError (util/error.hpp) so supervision layers
// can distinguish backend failure from bad input.
#pragma once

#include <memory>

#include "smt/solver.hpp"

namespace faure::smt {

/// True when this build includes the Z3 backend.
bool z3Available();

/// Creates a Z3-backed solver, or nullptr when built without Z3.
std::unique_ptr<SolverBase> makeZ3Solver(const CVarRegistry& reg);

/// Like makeZ3Solver, but a build without Z3 raises SolverBackendError
/// ("backend unavailable") instead of returning nullptr — for callers
/// (Session, the CLI) where a missing engine is a failure, not a branch.
std::unique_ptr<SolverBase> requireZ3Solver(const CVarRegistry& reg);

}  // namespace faure::smt
