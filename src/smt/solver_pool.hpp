// Per-worker condition solvers for the parallel fixpoint engine.
//
// The parallel evaluator (faurelog/eval.cpp, DESIGN.md §7) pre-checks
// candidate-tuple conditions on worker threads, then *replays* the
// verdicts through the evaluation's main solver so logical accounting
// (guard charges, solver.* stats and metrics) is identical to a serial
// run. This class owns the physical side: one solver instance per
// worker lane, so concurrent checks never share mutable state.
//
//   * Cloneable prototypes (NativeSolver, SupervisedSolver over
//     cloneable chains — see SolverBase::cloneForLane) get one
//     independent instance per lane: clones are pure decision
//     procedures over the shared (read-only, for the duration of an
//     evaluation) CVarRegistry, so equally-configured clones produce
//     bit-identical verdicts.
//   * Any other backend (Z3) falls back to serializing every pooled
//     check through the prototype behind a mutex: a z3::context is not
//     thread-safe, and giving each worker its own context would also
//     need per-context translation caches and per-context formula
//     images — cost and complexity that the native solver makes
//     unnecessary. concurrent() reports false in that mode and the
//     evaluator keeps solver work on the replay thread instead.
//
// Lane death: a check that raises faure::SolverBackendError kills only
// its lane — the pool replaces the instance with a fresh clone of the
// prototype and retries the check once; if the replacement dies on the
// same formula the outcome degrades to Sat::Unknown (conservative for
// the replay path) and the run continues. laneReplacements() /
// poisonedChecks() expose the counts.
//
// Pool solvers deliberately carry NO ResourceGuard and NO Tracer:
// charging happens once, at replay, via SolverBase::consumeDelegated —
// attaching the guard here would double-charge the solver-check budget
// and pollute the serial-identical `solver.*` counter stream. Physical
// pool totals are exported separately under `eval.par.*`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "smt/solver.hpp"

namespace faure::smt {

class SolverPool {
 public:
  /// A pool with `lanes` independent checkers cloned from `prototype`
  /// (falls back to the shared-prototype mode when it cannot clone; see
  /// file comment). The prototype and its registry must outlive the
  /// pool and must not be reconfigured while the pool is in use.
  SolverPool(SolverBase& prototype, size_t lanes);

  size_t lanes() const { return perLane_.size(); }

  /// True when every lane has its own solver instance, i.e. check() may
  /// be called concurrently from distinct lanes.
  bool concurrent() const { return !perLane_.empty(); }

  /// One pre-check as performed by `lane`.
  struct Outcome {
    Sat verdict = Sat::Unknown;
    double seconds = 0.0;        // wall time of this check
    uint64_t enumerations = 0;   // enumeration work of this check
  };

  /// Decides satisfiability of `f` on the given lane. Thread-safe
  /// across distinct lanes when concurrent(); always safe (but
  /// serialized) otherwise.
  Outcome check(size_t lane, const Formula& f);

  /// Merged physical stats across all lanes (prototype-mode checks are
  /// excluded: they already live in the prototype's own stats).
  SolverStats pooledStats() const;

  /// Lanes replaced after a SolverBackendError (see file comment).
  uint64_t laneReplacements() const {
    return laneReplacements_.load(std::memory_order_relaxed);
  }
  /// Checks degraded to Unknown because the replacement lane died too.
  uint64_t poisonedChecks() const {
    return poisonedChecks_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<SolverBase> cloneLane(size_t lane);

  SolverBase& proto_;
  std::mutex protoMu_;  // guards proto_ in shared-prototype mode
  std::vector<std::unique_ptr<SolverBase>> perLane_;
  std::atomic<uint64_t> laneReplacements_{0};
  std::atomic<uint64_t> poisonedChecks_{0};
};

}  // namespace faure::smt
