// Satisfiability for c-table conditions.
//
// The paper's implementation ships every tuple condition to Z3 to discard
// contradictory tuples (§6, step 3). This module provides:
//
//   * NativeSolver — a built-in decision procedure for the condition
//     fragment fauré actually generates: equalities/disequalities over the
//     c-domain, ordered comparisons on integers, and linear integer atoms
//     (x_ + y_ + z_ = 1). It is complete whenever every variable involved
//     in the residual arithmetic has a finite domain (link-state bits,
//     enumerated subnets/servers/ports — all of the paper's workloads);
//     otherwise it falls back to interval propagation and may answer
//     Unknown.
//   * Z3Solver (z3_solver.hpp, optional) — the paper-faithful backend.
//
// Answers are three-valued. Tuple pruning treats Unknown as "keep", so an
// incomplete answer can cost performance but never soundness.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/trace.hpp"
#include "smt/formula.hpp"
#include "smt/transform.hpp"
#include "util/resource_guard.hpp"
#include "util/timer.hpp"
#include "value/value.hpp"

namespace faure::smt {

class VerdictCache;

enum class Sat : uint8_t { Unsat, Sat, Unknown };

std::string_view satText(Sat s);

/// Compatibility accessor over the solver's own counters. The canonical,
/// superset store for an *observed* run is the obs metrics registry
/// (`solver.*` names; see setTracer and DESIGN.md "Observability") —
/// when a tracer is attached every field here is mirrored there live,
/// plus a per-check latency histogram the struct cannot express.
struct SolverStats {
  uint64_t checks = 0;
  uint64_t unsat = 0;
  uint64_t unknown = 0;
  uint64_t enumerations = 0;
  /// Checks degraded to Unknown because a ResourceGuard budget tripped
  /// (always also counted in `unknown`).
  uint64_t budgetTrips = 0;
  double seconds = 0.0;
};

/// Interface shared by the native and Z3 backends.
class SolverBase {
 public:
  explicit SolverBase(const CVarRegistry& reg) : reg_(reg) {}
  virtual ~SolverBase() = default;

  SolverBase(const SolverBase&) = delete;
  SolverBase& operator=(const SolverBase&) = delete;

  /// Three-valued satisfiability of `f` under the registry's domains.
  /// With a VerdictCache attached, a memoized verdict is replayed through
  /// consumeDelegated — logical accounting (guard charges, stats, metric
  /// mirrors) is identical to recomputing; only wall time changes.
  Sat check(const Formula& f);

  /// True only when `f` is certainly unsatisfiable.
  bool definitelyUnsat(const Formula& f) { return check(f) == Sat::Unsat; }

  /// True when a ⇒ b is certain (i.e. a ∧ ¬b is Unsat). Unknown answers
  /// conservatively report "no". Memoized per ordered (a, b) pair when a
  /// VerdictCache is attached.
  bool implies(const Formula& a, const Formula& b);

  /// True when a ⟺ b is certain.
  bool equivalent(const Formula& a, const Formula& b);

  /// Accounts a check whose verdict was computed elsewhere (by a
  /// SolverPool worker during parallel evaluation): charges this
  /// solver's guard exactly as a local check() would — a tripped
  /// solver-check budget degrades the verdict to Unknown — and records
  /// stats and registry mirrors as if this solver had performed the
  /// check, with `seconds`/`enumerations` as measured by the actual
  /// performer. This keeps the logical `solver.*` counter stream
  /// identical between serial and parallel evaluation (DESIGN.md §7).
  Sat consumeDelegated(Sat verdict, double seconds, uint64_t enumerations);

  const CVarRegistry& registry() const { return reg_; }
  const SolverStats& stats() const { return stats_; }
  void resetStats() { stats_ = SolverStats{}; }

  /// Attaches a resource guard (util/resource_guard.hpp): every check()
  /// charges it, and a tripped guard degrades checks to Sat::Unknown —
  /// conservative for all callers (pruning keeps the tuple, implies()
  /// answers "no"). Null detaches; the guard must outlive the solver's
  /// use of it.
  void setGuard(ResourceGuard* guard) { guard_ = guard; }
  ResourceGuard* guard() const { return guard_; }

  /// Attaches a tracer (obs/trace.hpp): every check() mirrors its stats
  /// delta live into the tracer's metrics registry under `solver.*`
  /// (checks, unsat, unknown, budget_trips, enumerations, plus the
  /// `solver.check_seconds` latency histogram), and — with
  /// TracerOptions::fineSpans — records a `solver.check` span per call.
  /// Null detaches; the tracer must outlive the solver's use of it.
  /// Virtual so wrappers (smt::SupervisedSolver) can resolve additional
  /// metric handles; overrides must call the base.
  virtual void setTracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const { return tracer_; }

  /// An independent instance of this solver configured identically, for
  /// one SolverPool lane: clones must produce bit-identical verdicts and
  /// share no mutable state with this solver (the registry is read-only
  /// during an evaluation). Returns nullptr when the backend cannot be
  /// cloned (Z3: per-context translation state); SolverPool then falls
  /// back to its serialized shared-prototype mode. Clones carry no
  /// guard, tracer, or verdict cache — the pool wires what lanes need.
  virtual std::unique_ptr<SolverBase> cloneForLane(size_t lane) const {
    (void)lane;
    return nullptr;
  }

  /// Attaches a verdict cache (smt/verdict_cache.hpp): check()/implies()
  /// consult it first and store non-degraded verdicts back. The cache
  /// must be bound to this solver's registry (throws EvalError
  /// otherwise) and may be shared across solvers — SolverPool propagates
  /// the prototype's cache to every lane, and verify/ containment reuses
  /// a session's cache across eval and verification. Null detaches; the
  /// cache must outlive the solver's use of it.
  void setVerdictCache(VerdictCache* cache);
  VerdictCache* verdictCache() const { return cache_; }

 protected:
  /// Backend decision procedure behind the caching check() wrapper.
  virtual Sat checkUncached(const Formula& f) = 0;
  /// Charges one check against the guard; returns false when this check
  /// must degrade to Unknown (records stats for the degraded check).
  bool admitCheck();

  /// RAII wrapped around one check() by each backend: accumulates the
  /// call's wall time into stats_.seconds and, when a tracer is
  /// attached, mirrors the stats delta into the registry (and opens a
  /// fine-grained span). Exception-safe.
  class CheckScope {
   public:
    explicit CheckScope(SolverBase* solver);
    ~CheckScope();
    CheckScope(const CheckScope&) = delete;
    CheckScope& operator=(const CheckScope&) = delete;

   private:
    SolverBase* solver_;
    SolverStats before_;
    util::Stopwatch watch_;
    obs::Span span_;
  };

  const CVarRegistry& reg_;
  SolverStats stats_;
  ResourceGuard* guard_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  VerdictCache* cache_ = nullptr;
  /// Whether the verdict being produced by the current checkUncached()
  /// call is a pure logical outcome. check()/implies() reset it before
  /// each call and only store into the verdict cache while it holds;
  /// SupervisedSolver clears it when a verdict was shaped by supervision
  /// (fault, failover, breaker, quarantine) — such verdicts are
  /// resource/fault outcomes and must never be admitted into the cache,
  /// exactly like budget-degraded ones.
  bool lastCheckCacheable_ = true;

 private:
  /// Registry handles, resolved once in setTracer; valid iff tracer_.
  struct MetricHandles {
    obs::Counter* checks = nullptr;
    obs::Counter* unsat = nullptr;
    obs::Counter* unknown = nullptr;
    obs::Counter* budgetTrips = nullptr;
    obs::Counter* enumerations = nullptr;
    obs::Histogram* checkSeconds = nullptr;
  };
  MetricHandles metrics_;
};

/// RAII: attaches `guard` to `solver` for a scope — unless the solver
/// already carries one (the caller's wiring wins) — and restores the
/// previous attachment on exit. Either pointer may be null (no-op).
class ResourceGuardScope {
 public:
  ResourceGuardScope(SolverBase* solver, ResourceGuard* guard)
      : solver_(solver),
        prev_(solver != nullptr ? solver->guard() : nullptr) {
    if (solver_ != nullptr && guard != nullptr && prev_ == nullptr) {
      solver_->setGuard(guard);
    }
  }
  ~ResourceGuardScope() {
    if (solver_ != nullptr) solver_->setGuard(prev_);
  }

  ResourceGuardScope(const ResourceGuardScope&) = delete;
  ResourceGuardScope& operator=(const ResourceGuardScope&) = delete;

 private:
  SolverBase* solver_;
  ResourceGuard* prev_;
};

/// RAII: attaches `tracer` to `solver` for a scope — unless the solver
/// already carries one (the caller's wiring wins) — and restores the
/// previous attachment on exit. Either pointer may be null (no-op).
class TracerScope {
 public:
  TracerScope(SolverBase* solver, obs::Tracer* tracer)
      : solver_(solver),
        prev_(solver != nullptr ? solver->tracer() : nullptr) {
    if (solver_ != nullptr && tracer != nullptr && prev_ == nullptr) {
      solver_->setTracer(tracer);
    }
  }
  ~TracerScope() {
    if (solver_ != nullptr) solver_->setTracer(prev_);
  }

  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  SolverBase* solver_;
  obs::Tracer* prev_;
};

/// Built-in backend. See file comment for the completeness envelope.
class NativeSolver : public SolverBase {
 public:
  struct Options {
    /// DNF conversion budget before falling back to model enumeration.
    size_t maxDnfCubes = 4096;
    /// Assignment budget for finite-domain enumeration.
    uint64_t maxEnum = 1u << 16;
  };

  explicit NativeSolver(const CVarRegistry& reg)
      : NativeSolver(reg, Options{}) {}
  NativeSolver(const CVarRegistry& reg, Options opts)
      : SolverBase(reg), opts_(opts) {}

  /// Configuration, so a SolverPool can clone equivalently-configured
  /// per-worker instances.
  const Options& options() const { return opts_; }

  /// Native clones are pure decision procedures over the shared
  /// registry: same Options, bit-identical verdicts.
  std::unique_ptr<SolverBase> cloneForLane(size_t lane) const override {
    (void)lane;
    return std::make_unique<NativeSolver>(reg_, opts_);
  }

 protected:
  Sat checkUncached(const Formula& f) override;

 private:
  Sat checkCube(const Cube& cube);
  Sat enumerate(const Formula& f);

  Options opts_;
};

/// Enumerates every total assignment of `vars` (all must have finite
/// domains) under which `f` does not fold to false, invoking `fn` with the
/// assignment. Used for possible-world expansion in the loss-less property
/// tests. Returns false if some variable has no finite domain.
bool forEachModel(const Formula& f, const CVarRegistry& reg,
                  const std::vector<CVarId>& vars,
                  const std::function<void(const Assignment&)>& fn);

}  // namespace faure::smt
