// Semantic condition simplification.
//
// Fixed-point evaluation accumulates conditions as they derive —
// disjunctions of per-derivation cubes, often redundant (subsumed cubes,
// unsatisfiable cubes, validity in disguise). Simplification normalizes a
// condition to an equivalent but smaller form; it is optional (soundness
// never depends on it) and pays off when results are stored, printed, or
// queried repeatedly.
#pragma once

#include "smt/solver.hpp"

namespace faure::smt {

struct SimplifyOptions {
  /// DNF budget; formulas that exceed it are returned unchanged.
  size_t maxCubes = 1024;
  /// Remove atoms within a cube that are implied by the rest of the cube
  /// (solver-backed; quadratic in cube size).
  bool minimizeCubes = true;
  /// Detect that the whole condition is valid and collapse it to `true`
  /// (needs finite domains to be decidable by the native solver).
  bool detectValidity = true;
};

/// Returns a formula equivalent to `f` under the registry's domains,
/// no larger than `f` in cube count. Uses `solver` for satisfiability /
/// implication; Unknown answers leave the affected part untouched.
Formula simplify(const Formula& f, SolverBase& solver,
                 const SimplifyOptions& opts = {});

}  // namespace faure::smt
