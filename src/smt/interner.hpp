// Hash-consing of condition formulas.
//
// Every FormulaNode the smart constructors build is routed through the
// process-wide FormulaInterner, so structurally equal formulas share one
// node and Formula::operator== is a pointer comparison. That turns the
// hot syntactic paths of fixed-point evaluation — conj/disj dedup,
// impliesSyntactically's conjunct-set scans, CTable condition merging —
// into O(1) identity tests, and gives the solver's VerdictCache a stable
// key (the node address) for memoizing check()/implies() verdicts.
//
// The interner holds weak references only: a formula nobody uses anymore
// is freed normally, and its table slot is swept lazily (on bucket walk
// and on periodic table growth), so long-running sessions do not leak
// every condition they ever built. Thread-safe: the table is sharded by
// node hash, one mutex per shard, so parallel evaluation lanes interning
// join conditions rarely contend.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "smt/formula.hpp"

namespace faure::smt {

class FormulaInterner {
 public:
  /// The process-wide instance (formulas from different registries can
  /// share structure; c-variable *semantics* never enter the node).
  static FormulaInterner& instance();

  /// Returns the canonical shared node structurally equal to `node`,
  /// creating it if absent. `node.hash` must already be set and `node`'s
  /// children must themselves be interned (true for everything built
  /// through Formula's factories — kids are compared by pointer).
  std::shared_ptr<const FormulaNode> intern(FormulaNode&& node);

  struct Stats {
    uint64_t hits = 0;    // intern() found an existing node
    uint64_t misses = 0;  // intern() created a node
    uint64_t sweeps = 0;  // full expired-entry sweeps
    size_t entries = 0;   // live (non-expired at last count) entries
  };
  Stats stats() const;

  FormulaInterner(const FormulaInterner&) = delete;
  FormulaInterner& operator=(const FormulaInterner&) = delete;

 private:
  FormulaInterner() = default;

  static constexpr size_t kShards = 16;
  /// A shard sweeps expired weak entries whenever its bucket count
  /// doubles past this floor since the last sweep.
  static constexpr size_t kSweepFloor = 1024;

  struct Shard {
    mutable std::mutex mu;
    // node hash -> candidates with that hash (collisions are rare; the
    // vector also holds expired weak_ptrs until the next walk or sweep).
    std::unordered_map<size_t, std::vector<std::weak_ptr<const FormulaNode>>>
        buckets;
    size_t sweepAt = kSweepFloor;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t sweeps = 0;
  };

  static void sweep(Shard& shard);

  Shard shards_[kShards];
};

}  // namespace faure::smt
