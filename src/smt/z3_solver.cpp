#include "smt/z3_solver.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include <z3++.h>

#include "util/error.hpp"

namespace faure::smt {

namespace {

/// Base for value-numbered codes of non-integer constants; integer
/// constants must stay below this for the encoding to be faithful.
constexpr int64_t kCodeBase = int64_t{1} << 40;

class Z3Solver : public SolverBase {
 public:
  explicit Z3Solver(const CVarRegistry& reg) : SolverBase(reg) {}

  Sat checkUncached(const Formula& f) override {
    CheckScope scope(this);
    if (!admitCheck()) return Sat::Unknown;
    try {
      return checkWithZ3(f);
    } catch (const z3::exception& e) {
      // Internal engine trouble (resource limits inside z3, translation
      // raising) is a backend failure, not bad input: typed so that
      // supervision (smt/supervised_solver.hpp) can retry or fail over.
      throw SolverBackendError("z3", e.msg());
    }
  }

 private:
  Sat checkWithZ3(const Formula& f) {
    z3::context ctx;
    std::unordered_map<CVarId, z3::expr> vars;
    std::unordered_map<Value, int64_t> codes;
    z3::solver solver(ctx);

    // Translate a remaining deadline into Z3's native per-check timeout;
    // Z3 then degrades to unknown on its own, same contract as ours.
    if (guard_ != nullptr) {
      double remaining = guard_->remainingSeconds();
      if (std::isfinite(remaining)) {
        auto ms = static_cast<unsigned>(
            std::min(remaining * 1000.0, 4294967294.0));
        z3::params p(ctx);
        p.set("timeout", ms > 0 ? ms : 1u);
        solver.set(p);
      }
    }

    // Declare every variable occurring in f with its domain constraint.
    std::vector<CVarId> occurring;
    f.collectVars(occurring);
    for (CVarId v : occurring) {
      if (vars.count(v) != 0) continue;
      z3::expr e =
          ctx.int_const(("cv" + std::to_string(v)).c_str());
      vars.emplace(v, e);
      const auto& dom = reg_.info(v).domain;
      if (!dom.empty()) {
        z3::expr any = ctx.bool_val(false);
        for (const Value& d : dom) any = any || (e == code(ctx, codes, d));
        solver.add(any);
      }
    }

    solver.add(translate(ctx, vars, codes, f));
    z3::check_result r = solver.check();
    Sat result = r == z3::unsat  ? Sat::Unsat
                 : r == z3::sat ? Sat::Sat
                                : Sat::Unknown;
    if (result == Sat::Unsat) ++stats_.unsat;
    if (result == Sat::Unknown) {
      ++stats_.unknown;
      if (guard_ != nullptr && !guard_->checkDeadline()) ++stats_.budgetTrips;
    }
    return result;
  }

  static z3::expr code(z3::context& ctx,
                       std::unordered_map<Value, int64_t>& codes,
                       const Value& v) {
    if (v.kind() == Value::Kind::Int) {
      return ctx.int_val(v.asInt());
    }
    auto it = codes.find(v);
    int64_t c;
    if (it != codes.end()) {
      c = it->second;
    } else {
      c = kCodeBase + static_cast<int64_t>(codes.size());
      codes.emplace(v, c);
    }
    return ctx.int_val(c);
  }

  z3::expr operand(z3::context& ctx,
                   std::unordered_map<CVarId, z3::expr>& vars,
                   std::unordered_map<Value, int64_t>& codes, const Value& v) {
    if (v.isCVar()) {
      auto it = vars.find(v.asCVar());
      if (it == vars.end()) {
        auto [pos, _] = vars.emplace(
            v.asCVar(),
            ctx.int_const(("cv" + std::to_string(v.asCVar())).c_str()));
        return pos->second;
      }
      return it->second;
    }
    return code(ctx, codes, v);
  }

  z3::expr cmpExpr(const z3::expr& a, CmpOp op, const z3::expr& b) {
    switch (op) {
      case CmpOp::Eq:
        return a == b;
      case CmpOp::Ne:
        return a != b;
      case CmpOp::Lt:
        return a < b;
      case CmpOp::Le:
        return a <= b;
      case CmpOp::Gt:
        return a > b;
      case CmpOp::Ge:
        return a >= b;
    }
    throw EvalError("unreachable comparison operator");
  }

  z3::expr translate(z3::context& ctx,
                     std::unordered_map<CVarId, z3::expr>& vars,
                     std::unordered_map<Value, int64_t>& codes,
                     const Formula& f) {
    const FormulaNode& n = f.node();
    switch (n.kind) {
      case FormulaNode::Kind::True:
        return ctx.bool_val(true);
      case FormulaNode::Kind::False:
        return ctx.bool_val(false);
      case FormulaNode::Kind::Cmp:
        return cmpExpr(operand(ctx, vars, codes, n.lhs), n.op,
                       operand(ctx, vars, codes, n.rhs));
      case FormulaNode::Kind::Lin: {
        z3::expr sum = ctx.int_val(n.lin.cst);
        for (const auto& [v, c] : n.lin.coefs) {
          sum = sum + ctx.int_val(c) * operand(ctx, vars, codes,
                                               Value::cvar(v));
        }
        return cmpExpr(sum, n.op, ctx.int_val(0));
      }
      case FormulaNode::Kind::Not:
        return !translate(ctx, vars, codes, n.kids[0]);
      case FormulaNode::Kind::And:
      case FormulaNode::Kind::Or: {
        z3::expr acc = ctx.bool_val(n.kind == FormulaNode::Kind::And);
        for (const auto& k : n.kids) {
          z3::expr kid = translate(ctx, vars, codes, k);
          acc = n.kind == FormulaNode::Kind::And ? (acc && kid) : (acc || kid);
        }
        return acc;
      }
    }
    throw EvalError("unreachable formula kind");
  }
};

}  // namespace

bool z3Available() { return true; }

std::unique_ptr<SolverBase> makeZ3Solver(const CVarRegistry& reg) {
  return std::make_unique<Z3Solver>(reg);
}

std::unique_ptr<SolverBase> requireZ3Solver(const CVarRegistry& reg) {
  return makeZ3Solver(reg);
}

}  // namespace faure::smt
