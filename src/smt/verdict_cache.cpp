#include "smt/verdict_cache.hpp"

#include <cstdlib>

namespace faure::smt {

size_t VerdictCache::capacityFromEnv() {
  const char* env = std::getenv("FAURE_SOLVER_CACHE");
  if (env == nullptr || *env == '\0') return kDefaultCapacity;
  char* end = nullptr;
  unsigned long long n = std::strtoull(env, &end, 10);
  if (end == env) return kDefaultCapacity;
  return static_cast<size_t>(n);
}

void VerdictCache::syncEpochLocked() {
  uint64_t now = reg_.mutationEpoch();
  if (now == epoch_) return;
  epoch_ = now;
  if (!map_.empty()) {
    ++stats_.invalidations;
    clearLocked();
  }
}

void VerdictCache::clearLocked() {
  map_.clear();
  lru_.clear();
}

void VerdictCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  clearLocked();
}

std::optional<VerdictCache::Verdict> VerdictCache::lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  syncEpochLocked();
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lruPos);
  return it->second.verdict;
}

void VerdictCache::store(const Key& key,
                         std::shared_ptr<const FormulaNode> pinA,
                         std::shared_ptr<const FormulaNode> pinB,
                         Verdict verdict) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  syncEpochLocked();
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent lanes can race to store the same formula; verdicts are
    // deterministic, so first-in wins and the repeat just refreshes LRU.
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    return;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{verdict, std::move(pinA), std::move(pinB),
                          lru_.begin()});
}

std::optional<VerdictCache::Verdict> VerdictCache::lookupCheck(
    const Formula& f) {
  return lookup(Key{&f.node(), nullptr});
}

void VerdictCache::storeCheck(const Formula& f, Sat sat,
                              uint64_t enumerations) {
  store(Key{&f.node(), nullptr}, f.nodePtr(), nullptr,
        Verdict{sat, enumerations});
}

std::optional<VerdictCache::Verdict> VerdictCache::lookupImplies(
    const Formula& a, const Formula& b) {
  return lookup(Key{&a.node(), &b.node()});
}

void VerdictCache::storeImplies(const Formula& a, const Formula& b, Sat sat,
                                uint64_t enumerations) {
  store(Key{&a.node(), &b.node()}, a.nodePtr(), b.nodePtr(),
        Verdict{sat, enumerations});
}

VerdictCache::Stats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = map_.size();
  return out;
}

}  // namespace faure::smt
