// Condition formulas attached to c-table tuples (§3 of the paper).
//
// The condition language is the fragment the paper's listings use:
//   - comparison atoms over the c-domain:  x_ = [ABC], y_ != 1.2.3.4, p_ < 80
//   - linear integer atoms:                x_ + y_ + z_ = 1
//   - boolean structure:                   AND / OR / NOT, true, false
//
// Formula is an immutable value type over shared nodes. The smart
// constructors normalize on construction: constant folding, flattening of
// nested conjunction/disjunction, absorption of true/false, double
// negation, and pushing NOT into comparison operators. Normalization keeps
// conditions small during fixed-point evaluation; full satisfiability is
// the solver's job (solver.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "value/value.hpp"

namespace faure::smt {

/// Comparison operators usable in conditions and in fauré-log rule bodies.
enum class CmpOp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// The operator satisfied exactly when `op` is not: ¬(a = b) ⟺ a ≠ b, etc.
CmpOp negateOp(CmpOp op);

/// The operator with sides swapped: a < b ⟺ b > a.
CmpOp flipOp(CmpOp op);

/// Printable operator text ("=", "!=", "<", ...).
std::string_view opText(CmpOp op);

/// Applies `op` to two ordered integers.
bool evalIntCmp(int64_t a, CmpOp op, int64_t b);

/// A linear term  sum(coef_i * var_i) + cst  over integer c-variables.
/// Invariants: coefs sorted by variable id, no zero coefficients, at most
/// one entry per variable.
struct LinTerm {
  std::vector<std::pair<CVarId, int64_t>> coefs;
  int64_t cst = 0;

  /// Builds a normalized term from possibly unsorted/duplicated entries.
  static LinTerm make(std::vector<std::pair<CVarId, int64_t>> entries,
                      int64_t cst);

  bool isConstant() const { return coefs.empty(); }

  /// this + other.
  LinTerm plus(const LinTerm& other) const;
  /// this - other.
  LinTerm minus(const LinTerm& other) const;
  /// this * k.
  LinTerm scaled(int64_t k) const;

  friend bool operator==(const LinTerm& a, const LinTerm& b) {
    return a.cst == b.cst && a.coefs == b.coefs;
  }

  size_t hash() const;
  std::string toString(const CVarRegistry* reg = nullptr) const;
};

class Formula;

/// Internal shared node. Exposed so the solver and transforms can walk the
/// structure; construct formulas only through Formula's factories.
struct FormulaNode {
  enum class Kind : uint8_t { True, False, Cmp, Lin, And, Or, Not };

  Kind kind = Kind::True;
  // Kind::Cmp — comparison between two c-domain values.
  CmpOp op = CmpOp::Eq;
  Value lhs;
  Value rhs;
  // Kind::Lin — `lin  op  0`.
  LinTerm lin;
  // Kind::And / Or — children (>= 2); Kind::Not — exactly 1 child.
  std::vector<Formula> kids;

  size_t hash = 0;
};

/// Immutable boolean condition over the c-domain.
class Formula {
 public:
  using Kind = FormulaNode::Kind;

  /// Defaults to `true` (the empty condition of a regular tuple).
  Formula();

  static Formula top();
  static Formula bottom();
  static Formula boolean(bool b) { return b ? top() : bottom(); }

  /// Comparison atom; folds if both sides are constants, and normalizes so
  /// that a constant side (if any) is on the right and two c-variables are
  /// ordered by id. Ordered operators (< <= > >=) require Int operands
  /// when constant; throws TypeError otherwise.
  static Formula cmp(Value lhs, CmpOp op, Value rhs);

  /// Linear atom `term op 0`; folds when the term is constant and lowers
  /// single-variable unit-coefficient terms to a plain comparison.
  static Formula lin(LinTerm term, CmpOp op);

  /// N-ary conjunction: flattens, drops `true`, dedups syntactically,
  /// returns `false` if any child is `false` or if both an atom and its
  /// exact negation occur.
  static Formula conj(std::vector<Formula> parts);
  /// N-ary disjunction (dual of conj).
  static Formula disj(std::vector<Formula> parts);
  /// Negation: folds constants, double negation, and comparison atoms.
  static Formula neg(const Formula& f);

  static Formula conj2(const Formula& a, const Formula& b) {
    return conj({a, b});
  }
  static Formula disj2(const Formula& a, const Formula& b) {
    return disj({a, b});
  }

  Kind kind() const { return node_->kind; }
  bool isTrue() const { return kind() == Kind::True; }
  bool isFalse() const { return kind() == Kind::False; }
  bool isAtom() const { return kind() == Kind::Cmp || kind() == Kind::Lin; }

  const FormulaNode& node() const { return *node_; }

  /// The shared node itself — the hash-consed identity of this formula.
  /// Stable for the node's lifetime; smt::VerdictCache pins it to key
  /// memoized verdicts.
  const std::shared_ptr<const FormulaNode>& nodePtr() const { return node_; }

  /// Structural equality (after constructor normalization). Nodes are
  /// hash-consed (smt/interner.hpp), so this is a pointer comparison:
  /// structurally equal formulas share one node by construction.
  /// Semantic equivalence is Solver::equivalent.
  friend bool operator==(const Formula& a, const Formula& b) {
    return a.node_ == b.node_;
  }
  friend bool operator!=(const Formula& a, const Formula& b) {
    return !(a == b);
  }

  size_t hash() const { return node_->hash; }

  /// Renders in the paper's notation, e.g. "x_ = [ABC] | x_ = [ADEC]".
  std::string toString(const CVarRegistry* reg = nullptr) const;

  /// Collects all c-variables occurring in the formula into `out`.
  void collectVars(std::vector<CVarId>& out) const;

 private:
  explicit Formula(std::shared_ptr<const FormulaNode> node)
      : node_(std::move(node)) {}

  static Formula makeNode(FormulaNode node);

  std::shared_ptr<const FormulaNode> node_;
};

struct FormulaHash {
  size_t operator()(const Formula& f) const { return f.hash(); }
};

/// Cheap, sound, incomplete implication test: true only when a ⇒ b can be
/// shown structurally (equal formulas, conjunct-set inclusion, or a
/// matching disjunct of b). Used as a fast path before the solver during
/// fixed-point condition merging, where most re-derivations repeat an
/// already-recorded condition.
bool impliesSyntactically(const Formula& a, const Formula& b);

}  // namespace faure::smt
