#include "smt/transform.hpp"

#include "util/error.hpp"

namespace faure::smt {

namespace {

Value substValue(const Value& v, const Assignment& a) {
  if (!v.isCVar()) return v;
  auto it = a.find(v.asCVar());
  return it == a.end() ? v : it->second;
}

}  // namespace

Formula substitute(const Formula& f, const Assignment& a) {
  const auto& n = f.node();
  switch (n.kind) {
    case FormulaNode::Kind::True:
    case FormulaNode::Kind::False:
      return f;
    case FormulaNode::Kind::Cmp:
      return Formula::cmp(substValue(n.lhs, a), n.op, substValue(n.rhs, a));
    case FormulaNode::Kind::Lin: {
      LinTerm t;
      t.cst = n.lin.cst;
      std::vector<std::pair<CVarId, int64_t>> entries;
      for (const auto& [v, c] : n.lin.coefs) {
        auto it = a.find(v);
        if (it == a.end()) {
          entries.emplace_back(v, c);
        } else {
          if (it->second.kind() != Value::Kind::Int) {
            throw TypeError(
                "linear condition variable assigned a non-integer value");
          }
          t.cst += c * it->second.asInt();
        }
      }
      LinTerm folded = LinTerm::make(std::move(entries), t.cst);
      return Formula::lin(std::move(folded), n.op);
    }
    case FormulaNode::Kind::Not:
      return Formula::neg(substitute(n.kids[0], a));
    case FormulaNode::Kind::And:
    case FormulaNode::Kind::Or: {
      std::vector<Formula> kids;
      kids.reserve(n.kids.size());
      for (const auto& k : n.kids) kids.push_back(substitute(k, a));
      return n.kind == FormulaNode::Kind::And ? Formula::conj(std::move(kids))
                                              : Formula::disj(std::move(kids));
    }
  }
  return f;
}

namespace {

// Recursive DNF with a cube-count budget. Returns false when the budget is
// exhausted.
bool dnfRec(const Formula& f, std::vector<Cube>& out, size_t maxCubes) {
  const auto& n = f.node();
  switch (n.kind) {
    case FormulaNode::Kind::False:
      return true;  // contributes no cube
    case FormulaNode::Kind::True:
    case FormulaNode::Kind::Cmp:
    case FormulaNode::Kind::Lin:
      if (out.size() >= maxCubes) return false;
      out.push_back(Cube{f});
      return true;
    case FormulaNode::Kind::Not:
      // Factory-built formulas are in NNF; a stray Not wraps an atom.
      return dnfRec(Formula::neg(n.kids[0]), out, maxCubes);
    case FormulaNode::Kind::Or: {
      for (const auto& k : n.kids) {
        if (!dnfRec(k, out, maxCubes)) return false;
      }
      return true;
    }
    case FormulaNode::Kind::And: {
      // Cartesian product of the children's DNFs.
      std::vector<Cube> acc{Cube{}};
      for (const auto& k : n.kids) {
        std::vector<Cube> kidDnf;
        if (!dnfRec(k, kidDnf, maxCubes)) return false;
        std::vector<Cube> next;
        if (acc.size() * kidDnf.size() > maxCubes) return false;
        next.reserve(acc.size() * kidDnf.size());
        for (const auto& a : acc) {
          for (const auto& b : kidDnf) {
            Cube cube = a;
            cube.insert(cube.end(), b.begin(), b.end());
            next.push_back(std::move(cube));
          }
        }
        acc = std::move(next);
        if (acc.empty()) return true;  // a child was `false`
      }
      if (out.size() + acc.size() > maxCubes) return false;
      for (auto& c : acc) out.push_back(std::move(c));
      return true;
    }
  }
  return true;
}

}  // namespace

std::optional<std::vector<Cube>> toDnf(const Formula& f, size_t maxCubes) {
  std::vector<Cube> out;
  if (!dnfRec(f, out, maxCubes)) return std::nullopt;
  return out;
}

Formula fromDnf(const std::vector<Cube>& dnf) {
  std::vector<Formula> cubes;
  cubes.reserve(dnf.size());
  for (const auto& cube : dnf) {
    cubes.push_back(Formula::conj(cube));
  }
  return Formula::disj(std::move(cubes));
}

namespace {

bool mentionsAny(const Formula& f, const std::vector<CVarId>& vars) {
  std::vector<CVarId> occ;
  f.collectVars(occ);
  for (CVarId v : occ) {
    for (CVarId e : vars) {
      if (v == e) return true;
    }
  }
  return false;
}

bool isExistential(CVarId v, const std::vector<CVarId>& vars) {
  for (CVarId e : vars) {
    if (v == e) return true;
  }
  return false;
}

/// Eliminates existential variables from one cube; returns false when the
/// cube must be dropped (elimination not soundly possible).
bool projectCube(Cube& cube, const std::vector<CVarId>& evars,
                 const CVarRegistry& reg) {
  // Phase 1: substitute equalities that bind an existential variable.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < cube.size(); ++i) {
      const Formula& atom = cube[i];
      if (atom.isTrue()) continue;
      if (atom.isFalse()) return false;
      if (atom.kind() != FormulaNode::Kind::Cmp) continue;
      const FormulaNode& n = atom.node();
      if (n.op != CmpOp::Eq) continue;
      // Constructor normalization puts a c-variable on the left.
      Value from, to;
      if (n.lhs.isCVar() && isExistential(n.lhs.asCVar(), evars)) {
        from = n.lhs;
        to = n.rhs;
      } else if (n.rhs.isCVar() && isExistential(n.rhs.asCVar(), evars)) {
        from = n.rhs;
        to = n.lhs;
      } else {
        continue;
      }
      if (from == to) continue;
      Assignment sub{{from.asCVar(), to}};
      Cube next;
      next.reserve(cube.size() - 1);
      for (size_t j = 0; j < cube.size(); ++j) {
        if (j == i) continue;  // the defining equality is consumed
        Formula s = substitute(cube[j], sub);
        if (s.isFalse()) return false;
        if (!s.isTrue()) next.push_back(std::move(s));
      }
      cube = std::move(next);
      changed = true;
      break;
    }
  }
  // Phase 2: residual atoms mentioning existential variables.
  Cube kept;
  for (const Formula& atom : cube) {
    if (!mentionsAny(atom, evars)) {
      kept.push_back(atom);
      continue;
    }
    // Only `v != constant` over an unbounded-domain existential can be
    // soundly dropped (a witness always exists); everything else makes
    // the cube unprojectable.
    if (atom.kind() == FormulaNode::Kind::Cmp) {
      const FormulaNode& n = atom.node();
      if (n.op == CmpOp::Ne && n.lhs.isCVar() &&
          isExistential(n.lhs.asCVar(), evars) && n.rhs.isConstant() &&
          reg.info(n.lhs.asCVar()).domain.empty()) {
        continue;
      }
    }
    return false;
  }
  cube = std::move(kept);
  return true;
}

}  // namespace

Formula projectExistentials(const Formula& f, const std::vector<CVarId>& vars,
                            const CVarRegistry& reg, size_t maxCubes) {
  if (vars.empty()) return f;
  auto dnf = toDnf(f, maxCubes);
  if (!dnf.has_value()) return Formula::bottom();  // sound under-approx
  std::vector<Formula> out;
  for (Cube& cube : *dnf) {
    if (projectCube(cube, vars, reg)) {
      out.push_back(Formula::conj(cube));
    }
  }
  return Formula::disj(std::move(out));
}

}  // namespace faure::smt
