#include "smt/interner.hpp"

#include <algorithm>
#include <iterator>

namespace faure::smt {

namespace {

/// Structural equality between a candidate table entry and a node being
/// interned. Children are compared by pointer: they were interned first
/// (Formula's factories build bottom-up), so structural equality of kids
/// is exactly node identity.
bool sameNode(const FormulaNode& a, const FormulaNode& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case FormulaNode::Kind::True:
    case FormulaNode::Kind::False:
      return true;
    case FormulaNode::Kind::Cmp:
      return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
    case FormulaNode::Kind::Lin:
      return a.op == b.op && a.lin == b.lin;
    case FormulaNode::Kind::And:
    case FormulaNode::Kind::Or:
    case FormulaNode::Kind::Not:
      if (a.kids.size() != b.kids.size()) return false;
      for (size_t i = 0; i < a.kids.size(); ++i) {
        if (&a.kids[i].node() != &b.kids[i].node()) return false;
      }
      return true;
  }
  return false;
}

}  // namespace

FormulaInterner& FormulaInterner::instance() {
  static FormulaInterner interner;
  return interner;
}

void FormulaInterner::sweep(Shard& shard) {
  for (auto it = shard.buckets.begin(); it != shard.buckets.end();) {
    auto& vec = it->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [](const std::weak_ptr<const FormulaNode>& w) {
                               return w.expired();
                             }),
              vec.end());
    it = vec.empty() ? shard.buckets.erase(it) : std::next(it);
  }
  ++shard.sweeps;
  shard.sweepAt = std::max(kSweepFloor, shard.buckets.size() * 2);
}

std::shared_ptr<const FormulaNode> FormulaInterner::intern(FormulaNode&& node) {
  // Spread the hash before picking a shard: the low bits also select the
  // unordered_map bucket, so reusing them raw would correlate the two.
  size_t h = node.hash;
  Shard& shard = shards_[(h ^ (h >> 17)) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& vec = shard.buckets[h];
  for (auto it = vec.begin(); it != vec.end();) {
    if (auto sp = it->lock()) {
      if (sameNode(*sp, node)) {
        ++shard.hits;
        return sp;
      }
      ++it;
    } else {
      it = vec.erase(it);  // lazy cleanup while we are here anyway
    }
  }
  auto sp = std::make_shared<const FormulaNode>(std::move(node));
  vec.push_back(sp);
  ++shard.misses;
  if (shard.buckets.size() >= shard.sweepAt) sweep(shard);
  return sp;
}

FormulaInterner::Stats FormulaInterner::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.sweeps += shard.sweeps;
    for (const auto& [h, vec] : shard.buckets) {
      (void)h;
      for (const auto& w : vec) {
        if (!w.expired()) ++total.entries;
      }
    }
  }
  return total;
}

}  // namespace faure::smt
