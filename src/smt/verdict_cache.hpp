// Memoization of solver verdicts, keyed on hash-consed formula identity.
//
// Fauré's fixed-point evaluation repeats the *same* conditions round
// after round — re-derivations of a tuple rebuild structurally identical
// formulas, and distinct data parts routed through the same links share
// conditions outright. With nodes hash-consed (smt/interner.hpp), "the
// same condition" is a pointer, so a verdict computed once can be
// replayed for free. VerdictCache is that replay store: a bounded LRU
// map from interned node identity (one node for check(), an ordered pair
// for implies()) to the verdict and its enumeration work.
//
// Semantics (the parts that keep cached runs bit-identical to uncached
// ones — DESIGN.md §8):
//
//   * Only *logical* verdicts are stored. A check degraded to
//     Sat::Unknown by a ResourceGuard budget trip is a statement about
//     resources, not about the formula; caching it would leak one run's
//     budget state into another. SolverBase::check() detects trips via
//     the stats_.budgetTrips delta and skips the store.
//   * Hits still charge full logical accounting: the solver replays the
//     stored verdict through consumeDelegated(), so guard charges,
//     SolverStats and the mirrored `solver.*` metric stream are exactly
//     what an uncached run would produce. Only wall time changes.
//   * The cache is bound to one CVarRegistry and watches its
//     mutationEpoch(): mutating an existing variable's domain flips
//     verdicts, so the cache clears itself on the next access. Declaring
//     *fresh* variables does not invalidate (a pre-existing formula
//     cannot mention them).
//   * Entries pin their nodes (shared_ptr), so a key pointer can never
//     be reused by a recycled allocation while the entry lives.
//
// Thread-safe behind one mutex: lookups are pointer hashes, far cheaper
// than any solver check, and SolverPool lanes only reach the cache once
// per physical check. Hit verdicts are deterministic — which *thread*
// pays the miss varies, but every thread reads the same stored verdict,
// and logical accounting happens at the serial replay regardless.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "smt/formula.hpp"
#include "smt/solver.hpp"

namespace faure::smt {

class VerdictCache {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  /// Capacity from the FAURE_SOLVER_CACHE environment variable (number
  /// of entries; 0 disables), kDefaultCapacity when unset.
  static size_t capacityFromEnv();

  /// A cache over verdicts computed against `reg`'s domains. The
  /// registry must outlive the cache. `capacity` 0 means "never store"
  /// (every lookup misses) — callers normally just skip attaching one.
  explicit VerdictCache(const CVarRegistry& reg,
                        size_t capacity = kDefaultCapacity)
      : reg_(reg), capacity_(capacity) {}

  const CVarRegistry& registry() const { return reg_; }
  size_t capacity() const { return capacity_; }

  /// What a hit replays: the logical verdict plus the enumeration work
  /// the original check performed (consumeDelegated re-charges it).
  struct Verdict {
    Sat sat = Sat::Unknown;
    uint64_t enumerations = 0;
  };

  std::optional<Verdict> lookupCheck(const Formula& f);
  void storeCheck(const Formula& f, Sat sat, uint64_t enumerations);

  /// Ordered pair (a ⇒ b); (a,b) and (b,a) are distinct keys.
  std::optional<Verdict> lookupImplies(const Formula& a, const Formula& b);
  void storeImplies(const Formula& a, const Formula& b, Sat sat,
                    uint64_t enumerations);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  // full clears due to registry mutation
    size_t entries = 0;
  };
  Stats stats() const;

  /// Drops every entry (stats survive).
  void clear();

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

 private:
  struct Key {
    const FormulaNode* a = nullptr;
    const FormulaNode* b = nullptr;  // null: check(a); else implies(a, b)
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      auto mix = [](size_t h) {
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return h;
      };
      return mix(reinterpret_cast<size_t>(k.a)) ^
             (mix(reinterpret_cast<size_t>(k.b)) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct Entry {
    Verdict verdict;
    // Pin the interned nodes: the interner holds weak refs only, so
    // without these a dead formula's address could be recycled for a
    // different formula while its stale verdict is still keyed on it.
    std::shared_ptr<const FormulaNode> pinA;
    std::shared_ptr<const FormulaNode> pinB;
    std::list<Key>::iterator lruPos;
  };

  std::optional<Verdict> lookup(const Key& key);
  void store(const Key& key, std::shared_ptr<const FormulaNode> pinA,
             std::shared_ptr<const FormulaNode> pinB, Verdict verdict);
  /// Clears the table if the registry mutated since the last access.
  void syncEpochLocked();
  void clearLocked();

  const CVarRegistry& reg_;
  size_t capacity_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::list<Key> lru_;  // front = most recently used
  std::unordered_map<Key, Entry, KeyHash> map_;
  Stats stats_;
};

}  // namespace faure::smt
