#include "smt/solver_pool.hpp"

#include "util/timer.hpp"

namespace faure::smt {

SolverPool::SolverPool(SolverBase& prototype, size_t lanes)
    : proto_(prototype) {
  auto* native = dynamic_cast<NativeSolver*>(&prototype);
  if (native == nullptr) return;  // shared-prototype mode (see header)
  perLane_.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) {
    perLane_.push_back(std::make_unique<NativeSolver>(prototype.registry(),
                                                      native->options()));
    // Lanes share the prototype's verdict cache: a formula checked on
    // any lane (or at replay) is a hit everywhere after. Lanes carry no
    // guard, so their verdicts are never budget-degraded and always
    // cacheable; logical accounting still happens once, at replay.
    perLane_.back()->setVerdictCache(prototype.verdictCache());
  }
}

SolverPool::Outcome SolverPool::check(size_t lane, const Formula& f) {
  Outcome out;
  if (concurrent()) {
    NativeSolver& solver = *perLane_[lane];
    const SolverStats before = solver.stats();
    util::Stopwatch watch;
    out.verdict = solver.check(f);
    out.seconds = watch.elapsed();
    out.enumerations = solver.stats().enumerations - before.enumerations;
    return out;
  }
  std::lock_guard<std::mutex> lock(protoMu_);
  const SolverStats before = proto_.stats();
  util::Stopwatch watch;
  out.verdict = proto_.check(f);
  out.seconds = watch.elapsed();
  out.enumerations = proto_.stats().enumerations - before.enumerations;
  return out;
}

SolverStats SolverPool::pooledStats() const {
  SolverStats total;
  for (const auto& solver : perLane_) {
    const SolverStats& s = solver->stats();
    total.checks += s.checks;
    total.unsat += s.unsat;
    total.unknown += s.unknown;
    total.enumerations += s.enumerations;
    total.budgetTrips += s.budgetTrips;
    total.seconds += s.seconds;
  }
  return total;
}

}  // namespace faure::smt
