#include "smt/solver_pool.hpp"

#include "util/error.hpp"
#include "util/timer.hpp"

namespace faure::smt {

std::unique_ptr<SolverBase> SolverPool::cloneLane(size_t lane) {
  std::unique_ptr<SolverBase> solver = proto_.cloneForLane(lane);
  if (solver == nullptr) return nullptr;
  // Lanes share the prototype's verdict cache: a formula checked on
  // any lane (or at replay) is a hit everywhere after. Lanes carry no
  // guard, so their verdicts are never budget-degraded and always
  // cacheable; logical accounting still happens once, at replay.
  solver->setVerdictCache(proto_.verdictCache());
  return solver;
}

SolverPool::SolverPool(SolverBase& prototype, size_t lanes)
    : proto_(prototype) {
  perLane_.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) {
    std::unique_ptr<SolverBase> solver = cloneLane(i);
    if (solver == nullptr) {
      // Uncloneable prototype (Z3): shared-prototype mode (see header).
      perLane_.clear();
      return;
    }
    perLane_.push_back(std::move(solver));
  }
}

SolverPool::Outcome SolverPool::check(size_t lane, const Formula& f) {
  Outcome out;
  if (concurrent()) {
    // Only this lane's thread touches perLane_[lane], so replacing the
    // instance below is race-free.
    for (int attempt = 0; attempt < 2; ++attempt) {
      SolverBase& solver = *perLane_[lane];
      const SolverStats before = solver.stats();
      util::Stopwatch watch;
      try {
        out.verdict = solver.check(f);
      } catch (const SolverBackendError&) {
        // The lane died. Replace it with a fresh clone and retry once;
        // a second death on the same formula poisons only this check —
        // Unknown is conservative for the replay path, and the run
        // (and the lane, now healthy again) continues.
        std::unique_ptr<SolverBase> fresh = cloneLane(lane);
        const bool replaced = fresh != nullptr;
        if (replaced) {
          perLane_[lane] = std::move(fresh);
          laneReplacements_.fetch_add(1, std::memory_order_relaxed);
        }
        if (attempt == 1 || !replaced) {
          poisonedChecks_.fetch_add(1, std::memory_order_relaxed);
          out.verdict = Sat::Unknown;
          out.seconds = watch.elapsed();
          return out;
        }
        continue;
      }
      out.seconds = watch.elapsed();
      out.enumerations = solver.stats().enumerations - before.enumerations;
      return out;
    }
    return out;  // unreachable: both attempts return above
  }
  std::lock_guard<std::mutex> lock(protoMu_);
  const SolverStats before = proto_.stats();
  util::Stopwatch watch;
  out.verdict = proto_.check(f);
  out.seconds = watch.elapsed();
  out.enumerations = proto_.stats().enumerations - before.enumerations;
  return out;
}

SolverStats SolverPool::pooledStats() const {
  SolverStats total;
  for (const auto& solver : perLane_) {
    const SolverStats& s = solver->stats();
    total.checks += s.checks;
    total.unsat += s.unsat;
    total.unknown += s.unknown;
    total.enumerations += s.enumerations;
    total.budgetTrips += s.budgetTrips;
    total.seconds += s.seconds;
  }
  return total;
}

}  // namespace faure::smt
