#include "smt/formula.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "smt/interner.hpp"
#include "util/error.hpp"

namespace faure::smt {

CmpOp negateOp(CmpOp op) {
  switch (op) {
    case CmpOp::Eq:
      return CmpOp::Ne;
    case CmpOp::Ne:
      return CmpOp::Eq;
    case CmpOp::Lt:
      return CmpOp::Ge;
    case CmpOp::Le:
      return CmpOp::Gt;
    case CmpOp::Gt:
      return CmpOp::Le;
    case CmpOp::Ge:
      return CmpOp::Lt;
  }
  return CmpOp::Eq;
}

CmpOp flipOp(CmpOp op) {
  switch (op) {
    case CmpOp::Eq:
      return CmpOp::Eq;
    case CmpOp::Ne:
      return CmpOp::Ne;
    case CmpOp::Lt:
      return CmpOp::Gt;
    case CmpOp::Le:
      return CmpOp::Ge;
    case CmpOp::Gt:
      return CmpOp::Lt;
    case CmpOp::Ge:
      return CmpOp::Le;
  }
  return CmpOp::Eq;
}

std::string_view opText(CmpOp op) {
  switch (op) {
    case CmpOp::Eq:
      return "=";
    case CmpOp::Ne:
      return "!=";
    case CmpOp::Lt:
      return "<";
    case CmpOp::Le:
      return "<=";
    case CmpOp::Gt:
      return ">";
    case CmpOp::Ge:
      return ">=";
  }
  return "?";
}

bool evalIntCmp(int64_t a, CmpOp op, int64_t b) {
  switch (op) {
    case CmpOp::Eq:
      return a == b;
    case CmpOp::Ne:
      return a != b;
    case CmpOp::Lt:
      return a < b;
    case CmpOp::Le:
      return a <= b;
    case CmpOp::Gt:
      return a > b;
    case CmpOp::Ge:
      return a >= b;
  }
  return false;
}

LinTerm LinTerm::make(std::vector<std::pair<CVarId, int64_t>> entries,
                      int64_t cst) {
  std::map<CVarId, int64_t> acc;
  for (const auto& [v, c] : entries) acc[v] += c;
  LinTerm t;
  t.cst = cst;
  for (const auto& [v, c] : acc) {
    if (c != 0) t.coefs.emplace_back(v, c);
  }
  return t;
}

LinTerm LinTerm::plus(const LinTerm& other) const {
  std::vector<std::pair<CVarId, int64_t>> entries = coefs;
  entries.insert(entries.end(), other.coefs.begin(), other.coefs.end());
  return make(std::move(entries), cst + other.cst);
}

LinTerm LinTerm::minus(const LinTerm& other) const {
  return plus(other.scaled(-1));
}

LinTerm LinTerm::scaled(int64_t k) const {
  LinTerm t;
  if (k == 0) return t;
  t.cst = cst * k;
  t.coefs.reserve(coefs.size());
  for (const auto& [v, c] : coefs) t.coefs.emplace_back(v, c * k);
  return t;
}

size_t LinTerm::hash() const {
  uint64_t h = 0x100001b3ULL ^ static_cast<uint64_t>(cst);
  for (const auto& [v, c] : coefs) {
    h = (h * 1099511628211ULL) ^ (static_cast<uint64_t>(v) << 17) ^
        static_cast<uint64_t>(c);
  }
  return static_cast<size_t>(h);
}

std::string LinTerm::toString(const CVarRegistry* reg) const {
  std::string out;
  for (size_t i = 0; i < coefs.size(); ++i) {
    const auto& [v, c] = coefs[i];
    if (i == 0) {
      if (c == -1) out += "-";
      else if (c != 1) out += std::to_string(c) + "*";
    } else {
      out += c < 0 ? " - " : " + ";
      int64_t a = c < 0 ? -c : c;
      if (a != 1) out += std::to_string(a) + "*";
    }
    out += Value::cvar(v).toString(reg);
  }
  if (coefs.empty()) return std::to_string(cst);
  if (cst != 0) {
    out += cst < 0 ? " - " : " + ";
    out += std::to_string(cst < 0 ? -cst : cst);
  }
  return out;
}

namespace {

size_t combineHash(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

size_t nodeHash(const FormulaNode& n) {
  size_t h = static_cast<size_t>(n.kind) * 0x9e3779b97f4a7c15ULL;
  switch (n.kind) {
    case FormulaNode::Kind::True:
    case FormulaNode::Kind::False:
      return h;
    case FormulaNode::Kind::Cmp:
      h = combineHash(h, static_cast<size_t>(n.op));
      h = combineHash(h, n.lhs.hash());
      h = combineHash(h, n.rhs.hash());
      return h;
    case FormulaNode::Kind::Lin:
      h = combineHash(h, static_cast<size_t>(n.op));
      h = combineHash(h, n.lin.hash());
      return h;
    case FormulaNode::Kind::And:
    case FormulaNode::Kind::Or:
    case FormulaNode::Kind::Not:
      for (const auto& k : n.kids) h = combineHash(h, k.hash());
      return h;
  }
  return h;
}

// The boolean constants are interned like every other node, so the
// pointer-equality contract of operator== covers them uniformly.
const std::shared_ptr<const FormulaNode>& trueNode() {
  static const std::shared_ptr<const FormulaNode> node = [] {
    FormulaNode n;
    n.kind = FormulaNode::Kind::True;
    n.hash = nodeHash(n);
    return FormulaInterner::instance().intern(std::move(n));
  }();
  return node;
}

const std::shared_ptr<const FormulaNode>& falseNode() {
  static const std::shared_ptr<const FormulaNode> node = [] {
    FormulaNode n;
    n.kind = FormulaNode::Kind::False;
    n.hash = nodeHash(n);
    return FormulaInterner::instance().intern(std::move(n));
  }();
  return node;
}

}  // namespace

Formula::Formula() : node_(trueNode()) {}

Formula Formula::top() { return Formula(trueNode()); }

Formula Formula::bottom() { return Formula(falseNode()); }

Formula Formula::makeNode(FormulaNode node) {
  node.hash = nodeHash(node);
  return Formula(FormulaInterner::instance().intern(std::move(node)));
}

Formula Formula::cmp(Value lhs, CmpOp op, Value rhs) {
  // Both constants: fold.
  if (lhs.isConstant() && rhs.isConstant()) {
    if (op == CmpOp::Eq) return boolean(lhs == rhs);
    if (op == CmpOp::Ne) return boolean(lhs != rhs);
    if (lhs.kind() != Value::Kind::Int || rhs.kind() != Value::Kind::Int) {
      throw TypeError("ordered comparison on non-integer constants");
    }
    return boolean(evalIntCmp(lhs.asInt(), op, rhs.asInt()));
  }
  // Identical sides (same c-variable).
  if (lhs == rhs) {
    switch (op) {
      case CmpOp::Eq:
      case CmpOp::Le:
      case CmpOp::Ge:
        return top();
      case CmpOp::Ne:
      case CmpOp::Lt:
      case CmpOp::Gt:
        return bottom();
    }
  }
  // Normalize: constant (or larger var id) on the right.
  bool flip = false;
  if (lhs.isConstant() && rhs.isCVar()) {
    flip = true;
  } else if (lhs.isCVar() && rhs.isCVar() && rhs.asCVar() < lhs.asCVar()) {
    flip = true;
  }
  if (flip) {
    std::swap(lhs, rhs);
    op = flipOp(op);
  }
  FormulaNode n;
  n.kind = FormulaNode::Kind::Cmp;
  n.op = op;
  n.lhs = lhs;
  n.rhs = rhs;
  return makeNode(std::move(n));
}

Formula Formula::lin(LinTerm term, CmpOp op) {
  if (term.isConstant()) return boolean(evalIntCmp(term.cst, op, 0));
  if (term.coefs.size() == 1) {
    auto [v, c] = term.coefs[0];
    // c*v + cst op 0. For |c| == 1 this is exactly v op' (-cst/c).
    if (c == 1) return cmp(Value::cvar(v), op, Value::fromInt(-term.cst));
    if (c == -1) {
      return cmp(Value::cvar(v), flipOp(op), Value::fromInt(term.cst));
    }
  }
  // Normalize sign: make the leading coefficient positive for Eq/Ne so that
  // syntactically mirrored atoms compare equal.
  if ((op == CmpOp::Eq || op == CmpOp::Ne) && term.coefs[0].second < 0) {
    term = term.scaled(-1);
  }
  FormulaNode n;
  n.kind = FormulaNode::Kind::Lin;
  n.op = op;
  n.lin = std::move(term);
  return makeNode(std::move(n));
}

Formula Formula::conj(std::vector<Formula> parts) {
  std::vector<Formula> kids;
  auto add = [&](const Formula& f) {
    for (const auto& k : kids) {
      if (k == f) return;  // syntactic dedup
    }
    kids.push_back(f);
  };
  // Flatten one level of nested And (constructors keep the tree flat, so
  // one level is all that can occur).
  for (const auto& p : parts) {
    if (p.isFalse()) return bottom();
    if (p.isTrue()) continue;
    if (p.kind() == Kind::And) {
      for (const auto& k : p.node().kids) {
        if (k.isFalse()) return bottom();
        if (!k.isTrue()) add(k);
      }
    } else {
      add(p);
    }
  }
  if (kids.empty()) return top();
  if (kids.size() == 1) return kids[0];
  // a AND NOT a  (exact structural complement) => false.
  for (const auto& k : kids) {
    Formula nk = neg(k);
    for (const auto& other : kids) {
      if (other == nk) return bottom();
    }
  }
  // Canonical child order so that equal sets of conjuncts produce equal
  // formulas regardless of derivation order; fixed-point evaluation relies
  // on this for syntactic dedup (and hence termination).
  std::stable_sort(kids.begin(), kids.end(),
                   [](const Formula& a, const Formula& b) {
                     return a.hash() < b.hash();
                   });
  FormulaNode n;
  n.kind = FormulaNode::Kind::And;
  n.kids = std::move(kids);
  return makeNode(std::move(n));
}

Formula Formula::disj(std::vector<Formula> parts) {
  std::vector<Formula> kids;
  auto add = [&](const Formula& f) {
    for (const auto& k : kids) {
      if (k == f) return;
    }
    kids.push_back(f);
  };
  for (const auto& p : parts) {
    if (p.isTrue()) return top();
    if (p.isFalse()) continue;
    if (p.kind() == Kind::Or) {
      for (const auto& k : p.node().kids) {
        if (k.isTrue()) return top();
        if (!k.isFalse()) add(k);
      }
    } else {
      add(p);
    }
  }
  if (kids.empty()) return bottom();
  if (kids.size() == 1) return kids[0];
  for (const auto& k : kids) {
    Formula nk = neg(k);
    for (const auto& other : kids) {
      if (other == nk) return top();
    }
  }
  std::stable_sort(kids.begin(), kids.end(),
                   [](const Formula& a, const Formula& b) {
                     return a.hash() < b.hash();
                   });
  FormulaNode n;
  n.kind = FormulaNode::Kind::Or;
  n.kids = std::move(kids);
  return makeNode(std::move(n));
}

Formula Formula::neg(const Formula& f) {
  switch (f.kind()) {
    case Kind::True:
      return bottom();
    case Kind::False:
      return top();
    case Kind::Cmp: {
      const auto& n = f.node();
      return cmp(n.lhs, negateOp(n.op), n.rhs);
    }
    case Kind::Lin: {
      const auto& n = f.node();
      return lin(n.lin, negateOp(n.op));
    }
    case Kind::Not:
      return f.node().kids[0];
    case Kind::And:
    case Kind::Or: {
      // De Morgan keeps formulas in negation normal form, which both the
      // printer and the DNF conversion rely on.
      std::vector<Formula> negKids;
      negKids.reserve(f.node().kids.size());
      for (const auto& k : f.node().kids) negKids.push_back(neg(k));
      return f.kind() == Kind::And ? disj(std::move(negKids))
                                   : conj(std::move(negKids));
    }
  }
  return f;
}

std::string Formula::toString(const CVarRegistry* reg) const {
  const auto& n = node();
  switch (n.kind) {
    case Kind::True:
      return "true";
    case Kind::False:
      return "false";
    case Kind::Cmp:
      return n.lhs.toString(reg) + " " + std::string(opText(n.op)) + " " +
             n.rhs.toString(reg);
    case Kind::Lin:
      return n.lin.toString(reg) + " " + std::string(opText(n.op)) + " 0";
    case Kind::Not:
      return "!(" + n.kids[0].toString(reg) + ")";
    case Kind::And:
    case Kind::Or: {
      std::string sep = n.kind == Kind::And ? " & " : " | ";
      std::string out;
      for (size_t i = 0; i < n.kids.size(); ++i) {
        if (i > 0) out += sep;
        const auto& k = n.kids[i];
        bool paren = k.kind() == Kind::And || k.kind() == Kind::Or;
        out += paren ? "(" + k.toString(reg) + ")" : k.toString(reg);
      }
      return out;
    }
  }
  return "?";
}

namespace {

/// Conjunct list of a formula: its children for And, itself otherwise.
void conjuncts(const Formula& f, std::vector<Formula>& out) {
  if (f.kind() == Formula::Kind::And) {
    out = f.node().kids;
  } else {
    out = {f};
  }
}

/// a's conjunct set ⊇ b's conjunct set (so a ⇒ b).
bool conjunctsInclude(const std::vector<Formula>& a,
                      const std::vector<Formula>& b) {
  for (const auto& need : b) {
    bool found = false;
    for (const auto& have : a) {
      if (have == need) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool impliesSyntactically(const Formula& a, const Formula& b) {
  if (a.isFalse() || b.isTrue()) return true;
  if (a == b) return true;
  if (b.isFalse() || a.isTrue()) return false;
  // a ⇒ (c1 | c2 | ...) if a ⇒ some ci (checking each ci structurally).
  if (b.kind() == Formula::Kind::Or) {
    std::vector<Formula> ac;
    conjuncts(a, ac);
    for (const auto& kid : b.node().kids) {
      if (kid == a) return true;
      std::vector<Formula> kc;
      conjuncts(kid, kc);
      if (conjunctsInclude(ac, kc)) return true;
    }
    // (a1 | a2) ⇒ b needs every disjunct of a to imply b.
    if (a.kind() == Formula::Kind::Or) {
      for (const auto& kid : a.node().kids) {
        if (!impliesSyntactically(kid, b)) return false;
      }
      return true;
    }
    return false;
  }
  if (a.kind() == Formula::Kind::Or) {
    for (const auto& kid : a.node().kids) {
      if (!impliesSyntactically(kid, b)) return false;
    }
    return true;
  }
  std::vector<Formula> ac;
  std::vector<Formula> bc;
  conjuncts(a, ac);
  conjuncts(b, bc);
  return conjunctsInclude(ac, bc);
}

void Formula::collectVars(std::vector<CVarId>& out) const {
  const auto& n = node();
  switch (n.kind) {
    case Kind::True:
    case Kind::False:
      return;
    case Kind::Cmp:
      if (n.lhs.isCVar()) out.push_back(n.lhs.asCVar());
      if (n.rhs.isCVar()) out.push_back(n.rhs.asCVar());
      return;
    case Kind::Lin:
      for (const auto& [v, c] : n.lin.coefs) {
        (void)c;
        out.push_back(v);
      }
      return;
    case Kind::And:
    case Kind::Or:
    case Kind::Not:
      for (const auto& k : n.kids) k.collectVars(out);
      return;
  }
}

}  // namespace faure::smt
